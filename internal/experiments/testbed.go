// Package experiments regenerates every table- and figure-shaped result in
// the paper's evaluation (see DESIGN.md's per-experiment index E1–E13).
// Each experiment builds a fresh simulated testbed — HPC machines with
// batch queues, an HTC pool, a cloud region, a YARN cluster, Pilot-Data
// sites — runs the workload through the pilot stack in virtual time, and
// returns the same rows the paper reports. The cmd/experiments binary and
// the root bench_test.go both drive this package.
package experiments

import (
	"fmt"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/infra/cloud"
	"gopilot/internal/infra/hpc"
	"gopilot/internal/infra/htc"
	"gopilot/internal/infra/yarn"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// DefaultScale compresses one modeled second into one wall millisecond
// (only meaningful in ClockScaled mode).
const DefaultScale = 1000

// ClockMode selects the clock implementation a testbed runs on.
type ClockMode int

// Clock modes. The zero value defers to DefaultClockMode.
const (
	// ClockDefault uses DefaultClockMode.
	ClockDefault ClockMode = iota
	// ClockVirtual runs on vclock.Virtual: modeled sleeps cost zero wall
	// time and same-seed runs are bit-reproducible. The goroutine calling
	// NewTestbed is adopted into the executor until Close.
	ClockVirtual
	// ClockScaled runs on vclock.Scaled with TestbedConfig.Scale — real
	// (compressed) wall time, for live demos.
	ClockScaled
	// ClockReal runs on wall time, uncompressed.
	ClockReal
)

// ParseClockMode maps the -clock flag values to a mode.
func ParseClockMode(s string) (ClockMode, error) {
	switch s {
	case "", "virtual":
		return ClockVirtual, nil
	case "scaled":
		return ClockScaled, nil
	case "real":
		return ClockReal, nil
	}
	return ClockDefault, fmt.Errorf("experiments: unknown clock mode %q (want virtual, scaled or real)", s)
}

// DefaultClockMode is the mode used when TestbedConfig.Mode is
// ClockDefault. Benchmarks, tests and exhibits all run virtual unless a
// caller (cmd/experiments -clock) overrides this before any testbed is
// built; it is not safe to change concurrently with testbed use.
var DefaultClockMode = ClockVirtual

// Testbed is the simulated multi-infrastructure environment every
// experiment runs on: two HPC machines (different queue pressure), an HTC
// pool, a cloud region, a YARN cluster and a Pilot-Data service
// federating their sites.
type Testbed struct {
	Clock    vclock.Clock
	Virtual  *vclock.Virtual // non-nil when running in ClockVirtual mode
	Registry *saga.Registry
	HPCA     *hpc.Cluster
	HPCB     *hpc.Cluster
	HTC      *htc.Pool
	Cloud    *cloud.Provider
	Yarn     *yarn.Cluster
	Data     *data.Service

	// Root is the experiment's seeding-spine root, derived once from
	// TestbedConfig.Seed. Every component owns a child named by its
	// *identity* — "infra/hpc/stampede", "manager"/<ordinal>,
	// "app/rexchange" — never by construction order, so adding a backend,
	// pilot or workload to a same-seed testbed leaves every existing
	// component's draw sequence bit-identical (the component-insensitivity
	// contract; see DESIGN.md "Seeding spine"). Extensions must derive
	// their streams from here: tb.Root.Named("infra/hpc/<newname>").
	Root *dist.Stream

	managers []*core.Manager
}

// TestbedConfig tunes the environment.
type TestbedConfig struct {
	// Mode selects the clock (default: DefaultClockMode, normally virtual).
	Mode ClockMode
	// Scale is the virtual-time factor for ClockScaled (default
	// DefaultScale); ignored on the virtual and real clocks.
	Scale float64
	// QueueWaitMean is machine A's mean exogenous queue wait in seconds
	// (default 60). Machine B always waits 4× longer (a busier machine).
	QueueWaitMean float64
	// QueueWaitCV is the lognormal coefficient of variation (default 0.5).
	QueueWaitCV float64
	// Seed is the experiment's single root seed. It is the only integer
	// seed in the whole stack: NewTestbed turns it into one root stream
	// and every component below receives a named sub-stream (see Root).
	Seed int64
}

// NewTestbed builds the environment. In virtual mode the calling goroutine
// is adopted as a participant of the executor — it must be the (single)
// driver of the testbed until Close, and must not touch a still-open outer
// virtual testbed in between (nesting is fine; interleaving is not).
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Mode == ClockDefault {
		cfg.Mode = DefaultClockMode
	}
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultScale
	}
	if cfg.QueueWaitMean <= 0 {
		cfg.QueueWaitMean = 60
	}
	if cfg.QueueWaitCV <= 0 {
		cfg.QueueWaitCV = 0.5
	}
	var clock vclock.Clock
	var virtual *vclock.Virtual
	switch cfg.Mode {
	case ClockVirtual:
		virtual = vclock.NewVirtual(vclock.Epoch)
		clock = virtual
		virtual.Adopt()
	case ClockReal:
		clock = vclock.NewReal()
	default:
		clock = vclock.NewScaled(cfg.Scale)
	}
	root := dist.NewStream(cfg.Seed)
	tb := &Testbed{Clock: clock, Virtual: virtual, Registry: saga.NewRegistry(), Root: root}

	// Each backend's randomness is a child of the root named by the
	// component's identity — never by position in this function — so
	// registering an additional backend (or reordering this block) leaves
	// every other backend's sample sequence bit-identical.
	hpcaStream := root.Named("infra/hpc/stampede")
	tb.HPCA = hpc.New(hpc.Config{
		Name: "stampede", Nodes: 64, CoresPerNode: 16,
		QueueWait:        dist.LogNormalFrom(hpcaStream.Named("queue-wait"), cfg.QueueWaitMean, cfg.QueueWaitCV),
		DispatchOverhead: 2 * time.Second,
		Backfill:         true,
		Clock:            clock, Stream: hpcaStream,
	})
	hpcbStream := root.Named("infra/hpc/comet")
	tb.HPCB = hpc.New(hpc.Config{
		Name: "comet", Nodes: 32, CoresPerNode: 16,
		QueueWait:        dist.LogNormalFrom(hpcbStream.Named("queue-wait"), cfg.QueueWaitMean*4, cfg.QueueWaitCV),
		DispatchOverhead: 2 * time.Second,
		Backfill:         true,
		Clock:            clock, Stream: hpcbStream,
	})
	htcStream := root.Named("infra/htc/osg")
	tb.HTC = htc.New(htc.Config{
		Name: "osg", Slots: 128,
		MatchDelay: dist.LogNormalFrom(htcStream.Named("match-delay"), 15, 0.5),
		Clock:      clock, Stream: htcStream,
	})
	cloudStream := root.Named("infra/cloud/ec2")
	tb.Cloud = cloud.New(cloud.Config{
		Name: "ec2",
		Types: []cloud.VMType{
			{Name: "c5.2xlarge", Cores: 8, PricePerHour: 0.34},
			{Name: "c5.4xlarge", Cores: 16, PricePerHour: 0.68},
		},
		BootDelay: dist.LogNormalFrom(cloudStream.Named("boot-delay"), 45, 0.3),
		Clock:     clock, Stream: cloudStream,
	})
	yarnStream := root.Named("infra/yarn/yarn")
	tb.Yarn = yarn.New(yarn.Config{
		Name: "yarn", TotalCores: 64,
		AllocDelay: dist.LogNormalFrom(yarnStream.Named("alloc-delay"), 1, 0.3),
		Clock:      clock, Stream: yarnStream,
	})

	tb.Registry.Register(saga.NewLocalService("localhost", 64, clock))
	tb.Registry.Register(saga.NewHPCService(tb.HPCA, clock))
	tb.Registry.Register(saga.NewHPCService(tb.HPCB, clock))
	tb.Registry.Register(saga.NewHTCService(tb.HTC, clock))
	tb.Registry.Register(saga.NewCloudService(tb.Cloud, clock))
	tb.Registry.Register(saga.NewYarnService(tb.Yarn, 8, clock))

	tb.Data = data.NewService(data.Config{
		Clock:          clock,
		LocalBandwidth: 500e6,
		DefaultLink:    data.Link{Bandwidth: 50e6, Latency: 100 * time.Millisecond},
	})
	for _, s := range []string{"localhost", "stampede", "comet", "osg", "ec2", "yarn"} {
		tb.Data.AddSite(infra.Site(s))
	}
	return tb
}

// NewManager creates a pilot manager on the testbed (closed by Close).
// Managers are labeled by creation ordinal — "manager"/0, "manager"/1 — so
// creating an additional manager after existing ones never shifts their
// pilots' or units' streams.
func (tb *Testbed) NewManager(sched core.Scheduler) *core.Manager {
	m := core.NewManager(core.Config{
		Registry:  tb.Registry,
		Clock:     tb.Clock,
		Scheduler: sched,
		Data:      tb.Data,
		Stream:    tb.Root.Named("manager").SplitLabel(uint64(len(tb.managers))),
	})
	tb.managers = append(tb.managers, m)
	return m
}

// Close shuts every component down; in virtual mode it finally releases
// the driver goroutine from the executor.
func (tb *Testbed) Close() {
	for _, m := range tb.managers {
		m.Close()
	}
	tb.HPCA.Shutdown()
	tb.HPCB.Shutdown()
	tb.HTC.Shutdown()
	tb.Cloud.Shutdown()
	tb.Yarn.Shutdown()
	tb.Registry.CloseAll()
	if tb.Virtual != nil {
		tb.Virtual.Leave()
	}
}

// Go spawns fn as a participant of the testbed's clock (a plain goroutine
// on non-virtual clocks). Driver code that forks concurrent work against
// the testbed must use this instead of the go statement.
func (tb *Testbed) Go(fn func()) { vclock.Go(tb.Clock, fn) }
