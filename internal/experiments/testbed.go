// Package experiments regenerates every table- and figure-shaped result in
// the paper's evaluation (see DESIGN.md's per-experiment index E1–E12).
// Each experiment builds a fresh simulated testbed — HPC machines with
// batch queues, an HTC pool, a cloud region, a YARN cluster, Pilot-Data
// sites — runs the workload through the pilot stack in virtual time, and
// returns the same rows the paper reports. The cmd/experiments binary and
// the root bench_test.go both drive this package.
package experiments

import (
	"time"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/infra/cloud"
	"gopilot/internal/infra/hpc"
	"gopilot/internal/infra/htc"
	"gopilot/internal/infra/yarn"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// DefaultScale compresses one modeled second into one wall millisecond.
const DefaultScale = 1000

// Testbed is the simulated multi-infrastructure environment every
// experiment runs on: two HPC machines (different queue pressure), an HTC
// pool, a cloud region, a YARN cluster and a Pilot-Data service
// federating their sites.
type Testbed struct {
	Clock    *vclock.Scaled
	Registry *saga.Registry
	HPCA     *hpc.Cluster
	HPCB     *hpc.Cluster
	HTC      *htc.Pool
	Cloud    *cloud.Provider
	Yarn     *yarn.Cluster
	Data     *data.Service

	managers []*core.Manager
}

// TestbedConfig tunes the environment.
type TestbedConfig struct {
	// Scale is the virtual-time factor (default DefaultScale).
	Scale float64
	// QueueWaitMean is machine A's mean exogenous queue wait in seconds
	// (default 60). Machine B always waits 4× longer (a busier machine).
	QueueWaitMean float64
	// QueueWaitCV is the lognormal coefficient of variation (default 0.5).
	QueueWaitCV float64
	// Seed drives all infrastructure randomness.
	Seed int64
}

// NewTestbed builds the environment.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultScale
	}
	if cfg.QueueWaitMean <= 0 {
		cfg.QueueWaitMean = 60
	}
	if cfg.QueueWaitCV <= 0 {
		cfg.QueueWaitCV = 0.5
	}
	clock := vclock.NewScaled(cfg.Scale)
	tb := &Testbed{Clock: clock, Registry: saga.NewRegistry()}

	tb.HPCA = hpc.New(hpc.Config{
		Name: "stampede", Nodes: 64, CoresPerNode: 16,
		QueueWait:        dist.NewLogNormal(cfg.QueueWaitMean, cfg.QueueWaitCV, cfg.Seed+1),
		DispatchOverhead: 2 * time.Second,
		Backfill:         true,
		Clock:            clock,
	})
	tb.HPCB = hpc.New(hpc.Config{
		Name: "comet", Nodes: 32, CoresPerNode: 16,
		QueueWait:        dist.NewLogNormal(cfg.QueueWaitMean*4, cfg.QueueWaitCV, cfg.Seed+2),
		DispatchOverhead: 2 * time.Second,
		Backfill:         true,
		Clock:            clock,
	})
	tb.HTC = htc.New(htc.Config{
		Name: "osg", Slots: 128,
		MatchDelay: dist.NewLogNormal(15, 0.5, cfg.Seed+3),
		Clock:      clock, Seed: cfg.Seed + 4,
	})
	tb.Cloud = cloud.New(cloud.Config{
		Name: "ec2",
		Types: []cloud.VMType{
			{Name: "c5.2xlarge", Cores: 8, PricePerHour: 0.34},
			{Name: "c5.4xlarge", Cores: 16, PricePerHour: 0.68},
		},
		BootDelay: dist.NewLogNormal(45, 0.3, cfg.Seed+5),
		Clock:     clock,
	})
	tb.Yarn = yarn.New(yarn.Config{
		Name: "yarn", TotalCores: 64,
		AllocDelay: dist.NewLogNormal(1, 0.3, cfg.Seed+6),
		Clock:      clock,
	})

	tb.Registry.Register(saga.NewLocalService("localhost", 64, clock))
	tb.Registry.Register(saga.NewHPCService(tb.HPCA, clock))
	tb.Registry.Register(saga.NewHPCService(tb.HPCB, clock))
	tb.Registry.Register(saga.NewHTCService(tb.HTC, clock))
	tb.Registry.Register(saga.NewCloudService(tb.Cloud, clock))
	tb.Registry.Register(saga.NewYarnService(tb.Yarn, 8, clock))

	tb.Data = data.NewService(data.Config{
		Clock:          clock,
		LocalBandwidth: 500e6,
		DefaultLink:    data.Link{Bandwidth: 50e6, Latency: 100 * time.Millisecond},
	})
	for _, s := range []string{"localhost", "stampede", "comet", "osg", "ec2", "yarn"} {
		tb.Data.AddSite(infra.Site(s))
	}
	return tb
}

// NewManager creates a pilot manager on the testbed (closed by Close).
func (tb *Testbed) NewManager(sched core.Scheduler) *core.Manager {
	m := core.NewManager(core.Config{
		Registry:  tb.Registry,
		Clock:     tb.Clock,
		Scheduler: sched,
		Data:      tb.Data,
	})
	tb.managers = append(tb.managers, m)
	return m
}

// Close shuts every component down.
func (tb *Testbed) Close() {
	for _, m := range tb.managers {
		m.Close()
	}
	tb.HPCA.Shutdown()
	tb.HPCB.Shutdown()
	tb.HTC.Shutdown()
	tb.Cloud.Shutdown()
	tb.Yarn.Shutdown()
	tb.Registry.CloseAll()
}
