package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/apps/rexchange"
	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/dist"
	"gopilot/internal/metrics"
	"gopilot/internal/perfmodel"
	"gopilot/internal/scheduler"
)

// RexScaling reproduces Table II's Pilot-Job strong-scaling study with the
// analytical-model comparison of Thota et al. [72] (E3): replica-exchange
// at fixed ensemble size on growing pilots; measured makespan next to the
// RexModel prediction. The shape to reproduce: near-linear speedup while
// waves shrink, flattening once concurrency == ensemble size, with the
// model tracking measurements.
func RexScaling(scale float64) (*metrics.Table, error) {
	const (
		replicas  = 32
		cycles    = 3
		mdSeconds = 60
		exchange  = 5 * time.Second
	)
	tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 30, Seed: 3})
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	t := metrics.NewTable(
		fmt.Sprintf("Table II (Eval 3/4) — replica-exchange strong scaling (%d replicas × %d cycles, MD %ds)", replicas, cycles, mdSeconds),
		"pilot_cores", "measured", "model", "model_err_%", "speedup", "efficiency")

	var base time.Duration
	for _, cores := range []int{8, 16, 32, 64} {
		mgr := tb.NewManager(nil)
		p, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "rex", Resource: "local://localhost", Cores: cores, Walltime: 6 * time.Hour,
		})
		if err != nil {
			return nil, err
		}
		res, err := rexchange.Run(ctx, mgr, rexchange.Config{
			Replicas: replicas, Cycles: cycles,
			MDTime: dist.Constant(mdSeconds), ExchangeTime: exchange, Stream: tb.Root.Named("app/rexchange"),
		})
		if err != nil {
			return nil, err
		}
		p.Shutdown()

		model := perfmodel.RexModel{
			Replicas: replicas, CoresPerReplica: 1, PilotCores: cores,
			MD: time.Duration(mdSeconds) * time.Second, Exchange: exchange,
		}
		predicted := model.Total(cycles)
		errPct := (res.Elapsed.Seconds() - predicted.Seconds()) / predicted.Seconds() * 100
		if base == 0 {
			base = res.Elapsed
		}
		t.AddRow(cores,
			metrics.FormatDuration(res.Elapsed),
			metrics.FormatDuration(predicted),
			fmt.Sprintf("%+.1f", errPct),
			fmt.Sprintf("%.2f", metrics.Speedup(base, res.Elapsed)),
			fmt.Sprintf("%.2f", metrics.Speedup(base, res.Elapsed)/(float64(cores)/8)))
	}
	return t, nil
}

// PilotData reproduces Table II's Pilot-Data evaluation (E4): the same
// data-intensive bag of tasks under a data-oblivious and a data-aware
// scheduler across two sites. The shape: data-aware placement avoids
// nearly all cross-site transfers and wins on makespan; the gap widens
// with data size (data gravity).
func PilotData(scale float64) (*metrics.Table, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	t := metrics.NewTable(
		"Table II (Eval 3/4) — Pilot-Data: data-aware vs data-oblivious scheduling (16 tasks, 2 sites)",
		"chunk_size", "scheduler", "makespan", "bytes_moved_GB", "remote_reads", "local_reads")

	for _, chunkMB := range []float64{100, 1000} {
		for _, sched := range []core.Scheduler{scheduler.LeastLoaded{}, scheduler.DataAware{}} {
			tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 4})
			mgr := tb.NewManager(sched)
			// One pilot per site; data lives at stampede.
			if _, err := mgr.SubmitPilot(core.PilotDescription{
				Name: "pA", Resource: "hpc://stampede", Cores: 16, Walltime: 6 * time.Hour,
			}); err != nil {
				tb.Close()
				return nil, err
			}
			if _, err := mgr.SubmitPilot(core.PilotDescription{
				Name: "pB", Resource: "hpc://comet", Cores: 16, Walltime: 6 * time.Hour,
			}); err != nil {
				tb.Close()
				return nil, err
			}
			const tasks = 16
			for i := 0; i < tasks; i++ {
				if err := tb.Data.Put(ctx, data.Unit{
					ID:          fmt.Sprintf("pd-%d", i),
					Content:     []byte("chunk"),
					LogicalSize: int64(chunkMB * 1e6),
					Site:        "stampede",
				}); err != nil {
					tb.Close()
					return nil, err
				}
			}
			tb.Data.ResetStats()
			start := tb.Clock.Now()
			units := make([]*core.ComputeUnit, 0, tasks)
			for i := 0; i < tasks; i++ {
				id := fmt.Sprintf("pd-%d", i)
				u, err := mgr.SubmitUnit(core.UnitDescription{
					Name: "pd-task-" + id, InputData: []string{id},
					Run: func(ctx context.Context, tc core.TaskContext) error {
						if _, err := tc.Data.Read(ctx, id, tc.Site); err != nil {
							return err
						}
						// 30s of compute per chunk.
						if !tc.Sleep(ctx, 30*time.Second) {
							return ctx.Err()
						}
						return nil
					},
				})
				if err != nil {
					tb.Close()
					return nil, err
				}
				units = append(units, u)
			}
			for _, u := range units {
				if s, err := u.Wait(ctx); s != core.UnitDone {
					tb.Close()
					return nil, fmt.Errorf("pilot-data unit %v: %w", s, err)
				}
			}
			makespan := tb.Clock.Now().Sub(start)
			st := tb.Data.Stats()
			t.AddRow(
				fmt.Sprintf("%.0fMB", chunkMB),
				sched.Name(),
				metrics.FormatDuration(makespan),
				fmt.Sprintf("%.2f", float64(st.BytesMoved)/1e9),
				st.RemoteReads+st.Replications,
				st.LocalReads)
			tb.Close()
		}
	}
	return t, nil
}
