package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/metrics"
	"gopilot/internal/streaming"
	"gopilot/internal/vclock"
)

// MillionMessages is E13, the scale exhibit for the streaming data
// plane: n messages (default 10⁶) through an 8-partition topic on a
// 3-shard federated cluster (replication 3 — every shard holds every
// partition's log), consumed by a consumer group that starts at 4
// workers, grows to 5 mid-run, and shrinks back — two live rebalances —
// while per-partition MaxInflightBytes backpressure throttles the
// producer to consumer speed. Publishes acknowledge only at the quorum
// watermark, so the producer's pace is also the replication plane's. At
// the halfway mark the shard leading partition 0 is failed: its
// partitions fence, hand off to surviving replicas, and the deposed
// logs' unacknowledged suffixes are truncated and re-streamed, all in
// virtual time. Group offsets persist to the cluster's KV, so retention
// continuously trims the log below the committed low-watermark —
// resident bytes stay bounded however long the stream runs.
//
// Four invariants are checked inline and reported in the table, cheap
// enough to leave on under the benchmark gate: exactly-once in-order
// delivery (per-partition expected-offset CAS in the handler), commit
// marks that only advance and stay gapless (OnCommit), the acknowledged
// watermark advancing monotonically without gaps (OnAcked), and the
// resident-byte bound at every retention instant (OnRetention); replica
// logs are checked for divergence after the drain. Each is
// bit-identical per seed (BenchmarkStreaming_Million pins the wall-time
// and allocation budget).
func MillionMessages(scale float64, n int) (*metrics.Table, error) {
	if n <= 0 {
		n = 1_000_000
	}
	tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 23})
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	const (
		shards     = 3
		partitions = 8
		workers    = 4
		payloadLen = 64
		segSize    = 4096
		inflight   = 256 << 10 // ≈4k in-flight messages per partition
		pubBatch   = 4096
	)
	// Inline invariant state. All of it is deterministic per seed: message
	// delivery order per partition is fixed by the virtual-time schedule,
	// and each slot is touched only under per-partition ownership (the
	// group barrier for the handler, the partition lock for commits), so
	// the atomics are -race hygiene, not contended synchronization.
	var violations atomic.Int64
	var residentMax atomic.Int64
	var nextOffset [partitions]int64 // expected next delivery per partition
	var commitMark [partitions]int64 // last commit-through per partition
	var ackedMark [partitions]int64  // last acknowledged watermark per partition
	// The retention contract's bound: uncommitted in-flight bytes (capped
	// by backpressure, or one full publish batch admitted into an idle
	// partition), plus at most one unsealed segment of committed-but-not-
	// yet-trimmed messages behind the low-watermark.
	const residentBound = inflight + pubBatch*payloadLen + segSize*payloadLen

	cluster := streaming.NewCluster(streaming.ClusterConfig{
		Name: "million", Shards: shards, Replication: 3,
		HandoffDelay: 100 * time.Millisecond,
		// 50k msg/s per partition: the producer alone could saturate the
		// topic at 400k msg/s, so the consumers are the bottleneck and
		// backpressure is what paces the run.
		AppendCost:       20 * time.Microsecond,
		FetchLatency:     time.Millisecond,
		SegmentSize:      segSize,
		MaxInflightBytes: inflight,
		Clock:            tb.Clock,
		OnCommit: func(_ string, p int, from, through int64) {
			// Commit marks advance gaplessly: each applied commit starts
			// exactly where the previous one ended. A rewound or skipped
			// mark here is the cursor-rewind failure class.
			if from != atomic.LoadInt64(&commitMark[p]) || through <= from {
				violations.Add(1)
			}
			atomic.StoreInt64(&commitMark[p], through)
		},
		OnAcked: func(_ string, p int, from, to int64) {
			// The quorum watermark advances monotonically and gaplessly:
			// each advance starts exactly where the last one ended, even
			// across the mid-run handoff. The CAS mirrors the delivery
			// check — uncontended, kept sound across leadership changes.
			if !atomic.CompareAndSwapInt64(&ackedMark[p], from, to) || to <= from {
				violations.Add(1)
			}
		},
		OnRetention: func(_ string, _ int, resident, _ int64) {
			for {
				cur := residentMax.Load()
				if resident <= cur || residentMax.CompareAndSwap(cur, resident) {
					break
				}
			}
			if resident > residentBound {
				violations.Add(1)
			}
		},
	})
	defer cluster.Close()
	const topic = "million"
	if err := cluster.CreateTopic(topic, partitions); err != nil {
		return nil, err
	}
	mgr := tb.NewManager(nil)
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "mm", Resource: "local://localhost", Cores: workers + 2, Walltime: 2 * time.Hour,
	}); err != nil {
		return nil, err
	}

	group, err := streaming.StartGroup(ctx, mgr, cluster, streaming.GroupConfig{
		Name: "mm", Topic: topic, Workers: workers, BatchSize: 2048,
		// 100µs modeled per message: each partition drains at 10k msg/s,
		// 5× slower than it fills, so the producer spends most of the run
		// blocked on backpressure.
		CostPerMessage: 100 * time.Microsecond,
		PureHandler:    true,
		Offsets:        cluster.Offsets(),
		Stream:         tb.Root.Named("streaming/group/mm"),
		Handler: func(_ context.Context, _ core.TaskContext, m streaming.Message) error {
			var acc byte // pure CPU: fold the payload
			for _, b := range m.Value {
				acc ^= b
			}
			if acc == 0xFF {
				return fmt.Errorf("poisoned payload at offset %d", m.Offset)
			}
			// Exactly-once in order: this delivery must be the partition's
			// expected next offset. The CAS never contends — the generation
			// barrier gives each partition one owner — it exists so the
			// check stays sound (and -race-clean) across handoffs.
			if !atomic.CompareAndSwapInt64(&nextOffset[m.Partition], m.Offset, m.Offset+1) {
				violations.Add(1)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	// Bulk producer on its own participant: 4096-message batches through
	// the zero-alloc PublishValues path, blocking in modeled time
	// whenever a partition's in-flight bound is hit.
	var produceRate float64
	var produceErr error
	done := vclock.NewEvent(tb.Clock)
	tb.Go(func() {
		defer done.Fire()
		produceRate, produceErr = streaming.ProduceBatched(ctx, cluster, topic, n, 0, payload, pubBatch)
	})

	// Two live rebalances at deterministic progress points: a fifth
	// worker joins at one quarter, leaves at three quarters.
	if err := group.WaitProcessed(ctx, int64(n/4)); err != nil {
		return nil, fmt.Errorf("drained %d/%d before join: %w", group.Processed(), n, err)
	}
	joined, err := group.AddWorker()
	if err != nil {
		return nil, err
	}
	// Halfway: fail the shard leading partition 0. Its partitions fence,
	// hand off to surviving replicas after the election delay, and
	// re-replicate onto recruits — delivery and commits must stay exact.
	if err := group.WaitProcessed(ctx, int64(n/2)); err != nil {
		return nil, fmt.Errorf("drained %d/%d before shard loss: %w", group.Processed(), n, err)
	}
	victim, err := cluster.LeaderOf(topic, 0)
	if err != nil {
		return nil, err
	}
	if err := cluster.FailShard(victim); err != nil {
		return nil, err
	}
	if err := group.WaitProcessed(ctx, int64(3*n/4)); err != nil {
		return nil, fmt.Errorf("drained %d/%d before leave: %w", group.Processed(), n, err)
	}
	if err := group.RemoveWorker(joined); err != nil {
		return nil, err
	}
	if err := group.WaitProcessed(ctx, int64(n)); err != nil {
		return nil, fmt.Errorf("drained %d/%d: %w", group.Processed(), n, err)
	}
	if !done.Wait(ctx) {
		return nil, ctx.Err()
	}
	if produceErr != nil {
		return nil, produceErr
	}
	group.Stop()

	// Replica-log convergence: after the drain every follower's epoch
	// chain must agree with its leader's — a surviving diverged suffix
	// means the handoff's truncate-and-re-stream repair failed.
	violations.Add(int64(len(cluster.CheckReplicaConsistency(topic))))
	invariants := "ok"
	if v := violations.Load(); v > 0 {
		invariants = fmt.Sprintf("VIOLATED(%d)", v)
	}
	lat := group.LatencyStats()
	t := metrics.NewTable(
		fmt.Sprintf("E13 — million-message data plane (%d msgs, %d partitions on %d shards −1 mid-run, group %d→%d→%d workers)",
			n, partitions, shards, workers, workers+1, workers),
		"messages", "partitions", "shards", "handoffs", "workers", "rebalances",
		"produce_rate_msg_s", "throughput_msg_s", "latency_p50_s", "latency_p95_s",
		"resident_max_b", "repairs", "invariants")
	t.AddRow(group.Processed(), partitions, len(cluster.LiveShards()), cluster.Handoffs(),
		len(group.Members()), group.Rebalances(),
		fmt.Sprintf("%.0f", produceRate),
		fmt.Sprintf("%.0f", group.Throughput()),
		fmt.Sprintf("%.3f", lat.Median),
		fmt.Sprintf("%.3f", lat.P95),
		residentMax.Load(), cluster.Repairs(), invariants)
	return t, nil
}
