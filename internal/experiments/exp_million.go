package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/metrics"
	"gopilot/internal/streaming"
	"gopilot/internal/vclock"
)

// MillionMessages is E13, the scale exhibit for the streaming data plane:
// n messages (default 10⁶) through an 8-partition topic consumed by a
// consumer group that starts at 4 workers, grows to 5 mid-run, and
// shrinks back — two live rebalances — while per-partition
// MaxInflightBytes backpressure throttles the producer to consumer
// speed. The segmented zero-copy log and batch-amortized accounting are
// what make the run complete in seconds of wall time on the virtual
// clock, bit-identical per seed (BenchmarkStreaming_Million pins the
// wall-time and allocation budget).
func MillionMessages(scale float64, n int) (*metrics.Table, error) {
	if n <= 0 {
		n = 1_000_000
	}
	tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 23})
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	const (
		partitions = 8
		workers    = 4
		payloadLen = 64
	)
	broker := streaming.NewBroker(streaming.BrokerConfig{
		// 50k msg/s per partition: the producer alone could saturate the
		// topic at 400k msg/s, so the consumers are the bottleneck and
		// backpressure is what paces the run.
		AppendCost:       20 * time.Microsecond,
		FetchLatency:     time.Millisecond,
		SegmentSize:      4096,
		MaxInflightBytes: 256 << 10, // ≈4k in-flight messages per partition
		Clock:            tb.Clock,
	})
	defer broker.Close()
	const topic = "million"
	if err := broker.CreateTopic(topic, partitions); err != nil {
		return nil, err
	}
	mgr := tb.NewManager(nil)
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "mm", Resource: "local://localhost", Cores: workers + 2, Walltime: 2 * time.Hour,
	}); err != nil {
		return nil, err
	}

	group, err := streaming.StartGroup(ctx, mgr, broker, streaming.GroupConfig{
		Name: "mm", Topic: topic, Workers: workers, BatchSize: 2048,
		// 100µs modeled per message: each partition drains at 10k msg/s,
		// 5× slower than it fills, so the producer spends most of the run
		// blocked on backpressure.
		CostPerMessage: 100 * time.Microsecond,
		PureHandler:    true,
		Stream:         tb.Root.Named("streaming/group/mm"),
		Handler: func(_ context.Context, _ core.TaskContext, m streaming.Message) error {
			var acc byte // pure CPU: fold the payload
			for _, b := range m.Value {
				acc ^= b
			}
			if acc == 0xFF {
				return fmt.Errorf("poisoned payload at offset %d", m.Offset)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	// Bulk producer on its own participant: 4096-message batches through
	// the zero-alloc PublishValues path, blocking in modeled time
	// whenever a partition's in-flight bound is hit.
	var produceRate float64
	var produceErr error
	done := vclock.NewEvent(tb.Clock)
	tb.Go(func() {
		defer done.Fire()
		produceRate, produceErr = streaming.ProduceBatched(ctx, broker, topic, n, 0, payload, 4096)
	})

	// Two live rebalances at deterministic progress points: a fifth
	// worker joins at one quarter, leaves at three quarters.
	if err := group.WaitProcessed(ctx, int64(n/4)); err != nil {
		return nil, fmt.Errorf("drained %d/%d before join: %w", group.Processed(), n, err)
	}
	joined, err := group.AddWorker()
	if err != nil {
		return nil, err
	}
	if err := group.WaitProcessed(ctx, int64(3*n/4)); err != nil {
		return nil, fmt.Errorf("drained %d/%d before leave: %w", group.Processed(), n, err)
	}
	if err := group.RemoveWorker(joined); err != nil {
		return nil, err
	}
	if err := group.WaitProcessed(ctx, int64(n)); err != nil {
		return nil, fmt.Errorf("drained %d/%d: %w", group.Processed(), n, err)
	}
	if !done.Wait(ctx) {
		return nil, ctx.Err()
	}
	if produceErr != nil {
		return nil, produceErr
	}
	group.Stop()

	lat := group.LatencyStats()
	t := metrics.NewTable(
		fmt.Sprintf("E13 — million-message data plane (%d msgs, %d partitions, group %d→%d→%d workers)",
			n, partitions, workers, workers+1, workers),
		"messages", "partitions", "workers", "rebalances", "produce_rate_msg_s", "throughput_msg_s", "latency_p50_s", "latency_p95_s")
	t.AddRow(group.Processed(), partitions, len(group.Members()), group.Rebalances(),
		fmt.Sprintf("%.0f", produceRate),
		fmt.Sprintf("%.0f", group.Throughput()),
		fmt.Sprintf("%.3f", lat.Median),
		fmt.Sprintf("%.3f", lat.P95))
	return t, nil
}
