//go:build race

package experiments

// raceEnabled relaxes shape assertions that compare scaled-wall-clock
// timings: race instrumentation multiplies the *real* CPU cost of
// handlers until it dominates the *modeled* per-message cost, which
// legitimately flattens throughput-scaling shapes.
const raceEnabled = true
