package experiments

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/infra/serverless"
	"gopilot/internal/metrics"
	"gopilot/internal/streaming"
)

// runJitterTrial drives a small stream through pilot workers with the
// given per-batch cost CV and returns the end-to-end latency summary.
func runJitterTrial(t *testing.T, costCV float64) metrics.Summary {
	t.Helper()
	tb := NewTestbed(TestbedConfig{Scale: testScale, Seed: 11})
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	broker := streaming.NewBroker(streaming.BrokerConfig{
		AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: tb.Clock,
	})
	defer broker.Close()
	if err := broker.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	mgr := tb.NewManager(nil)
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "p", Resource: "local://localhost", Cores: 4, Walltime: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	proc, err := streaming.StartProcessor(ctx, mgr, broker, streaming.ProcessorConfig{
		Name: "jit", Topic: "t", Workers: 2, BatchSize: 8,
		CostPerMessage: 10 * time.Millisecond,
		CostCV:         costCV,
		Stream:         tb.Root.Named("streaming/processor/jit"),
		Handler: func(_ context.Context, _ core.TaskContext, _ streaming.Message) error {
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	if _, err := streaming.Produce(ctx, broker, "t", n, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := proc.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d/%d: %v", proc.Processed(), n, err)
	}
	proc.Stop()
	return proc.LatencyStats()
}

// TestProcessorCostJitterDeterministicAndEffective covers the CostCV
// path: on the virtual clock, same-seed jittered runs are bit-identical
// (per-worker labeled streams), and jitter actually perturbs modeled
// latencies relative to the deterministic-cost run.
func TestProcessorCostJitterDeterministicAndEffective(t *testing.T) {
	jittered := runJitterTrial(t, 0.8)
	again := runJitterTrial(t, 0.8)
	if !reflect.DeepEqual(jittered, again) {
		t.Fatalf("same-seed jittered runs diverge:\n %+v\n %+v", jittered, again)
	}
	flat := runJitterTrial(t, 0)
	if reflect.DeepEqual(jittered, flat) {
		t.Fatal("CostCV=0.8 produced the same latencies as CostCV=0 — jitter path never sampled")
	}
}

// TestServerlessCostJitterDeterministic covers the serverless
// processor's per-partition jitter branch the same way.
func TestServerlessCostJitterDeterministic(t *testing.T) {
	run := func() metrics.Summary {
		tb := NewTestbed(TestbedConfig{Scale: testScale, Seed: 13})
		defer tb.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		broker := streaming.NewBroker(streaming.BrokerConfig{
			AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: tb.Clock,
		})
		defer broker.Close()
		if err := broker.CreateTopic("f", 2); err != nil {
			t.Fatal(err)
		}
		platform := serverless.New(serverless.Config{
			Name: "faas", Clock: tb.Clock, Stream: tb.Root.Named("infra/serverless/faas"),
		})
		defer platform.Shutdown()
		proc, err := streaming.StartServerless(ctx, platform, broker, streaming.ServerlessConfig{
			Topic: "f", Function: "fn", BatchSize: 8,
			CostPerMessage: 5 * time.Millisecond,
			CostCV:         0.5,
			Stream:         tb.Root.Named("streaming/serverless/fn"),
			Handler:        func(_ context.Context, _ streaming.Message) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 32
		if _, err := streaming.Produce(ctx, broker, "f", n, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := proc.WaitProcessed(ctx, n); err != nil {
			t.Fatalf("processed %d/%d: %v", proc.Processed(), n, err)
		}
		proc.Stop()
		return proc.LatencyStats()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed serverless jittered runs diverge:\n %+v\n %+v", a, b)
	}
}
