package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/apps/kmeans"
	"gopilot/internal/apps/wordcount"
	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/mapreduce"
	"gopilot/internal/memory"
	"gopilot/internal/metrics"
)

// MapReduceScaling reproduces Table II's Pilot-Hadoop evaluation (E5):
// wordcount runtime and strong scaling on pilot-managed YARN containers.
// Shape: near-linear speedup while map tasks outnumber cores, flattening
// at the task-count ceiling.
func MapReduceScaling(scale float64) (*metrics.Table, error) {
	const splits = 16
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	t := metrics.NewTable(
		fmt.Sprintf("Table II (Eval 3) — Pilot-Hadoop wordcount strong scaling (%d splits)", splits),
		"cores", "makespan", "map_phase", "reduce_phase", "speedup")

	var base time.Duration
	for _, cores := range []int{2, 4, 8, 16} {
		tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 5})
		mgr := tb.NewManager(nil)
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "mr", Resource: "yarn://yarn", Cores: cores, Walltime: 2 * time.Hour,
		}); err != nil {
			tb.Close()
			return nil, err
		}
		corpus := wordcount.GenerateCorpus(splits, 3000, 500, tb.Root.Named("corpus"))
		ids := make([]string, splits)
		for i, s := range corpus {
			ids[i] = fmt.Sprintf("mr-split-%d", i)
			if err := tb.Data.Put(ctx, data.Unit{
				ID: ids[i], Content: []byte(s), LogicalSize: 128e6, Site: "yarn",
			}); err != nil {
				tb.Close()
				return nil, err
			}
		}
		// Production-scale per-task compute: 30s per 128MB map split, 20s
		// per reduce partition.
		job := wordcount.Config("mr", ids, 4)
		job.MapCost = 30 * time.Second
		job.ReduceCost = 20 * time.Second
		res, err := mapreduce.Run(ctx, mgr, job)
		if err != nil {
			tb.Close()
			return nil, err
		}
		if base == 0 {
			base = res.Elapsed
		}
		t.AddRow(cores,
			metrics.FormatDuration(res.Elapsed),
			metrics.FormatDuration(res.MapElapsed),
			metrics.FormatDuration(res.ReduceElapsed),
			fmt.Sprintf("%.2f", metrics.Speedup(base, res.Elapsed)))
		tb.Close()
	}
	return t, nil
}

// PilotMemory reproduces Table II's Pilot-Memory evaluation (E6): K-Means
// per-iteration time with partitions re-read from storage every iteration
// versus cached in Pilot-Memory. Shape: iteration 1 is comparable (cold
// cache pays the same read); later iterations collapse to compute time in
// memory mode, and the advantage grows with data size.
func PilotMemory(scale float64) (*metrics.Table, error) {
	const (
		points     = 4000
		partitions = 8
		iterations = 5
	)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	t := metrics.NewTable(
		fmt.Sprintf("Table II (Eval 3) — Pilot-Memory vs Pilot-Data for iterative K-Means (%d iterations)", iterations),
		"partition_size", "mode", "iter1", "later_iters_mean", "total", "speedup_later")

	for _, bytesPerPoint := range []int64{1 << 16, 1 << 18} {
		var diskLater float64
		for _, mode := range []kmeans.Mode{kmeans.ModeData, kmeans.ModeMemory} {
			tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 7})
			mgr := tb.NewManager(nil)
			if _, err := mgr.SubmitPilot(core.PilotDescription{
				Name: "km", Resource: "local://localhost", Cores: partitions, Walltime: 2 * time.Hour,
			}); err != nil {
				tb.Close()
				return nil, err
			}
			dataset := kmeans.Generate(points, 4, 3, 1.0, tb.Root.Named("dataset"))
			cfg := kmeans.Config{
				K: 4, MaxIter: iterations, Tol: 0, Partitions: partitions,
				Mode: mode, Site: "localhost", BytesPerPoint: bytesPerPoint, Stream: tb.Root.Named("app/kmeans"),
			}
			if mode == kmeans.ModeMemory {
				cfg.Cache = memory.NewCache(memory.Config{
					CapacityBytes: 16 << 30, Bandwidth: 10e9, Clock: tb.Clock,
				})
			}
			ids, err := kmeans.Stage(ctx, tb.Data, dataset, cfg)
			if err != nil {
				tb.Close()
				return nil, err
			}
			res, err := kmeans.Run(ctx, mgr, dataset, ids, cfg)
			if err != nil {
				tb.Close()
				return nil, err
			}
			later := metrics.Mean(metrics.Durations(res.IterTimes[1:]))
			if mode == kmeans.ModeData {
				diskLater = later
			}
			speedup := "1.00"
			if mode == kmeans.ModeMemory && later > 0 {
				speedup = fmt.Sprintf("%.2f", diskLater/later)
			}
			partitionMB := float64(points) / float64(partitions) * float64(bytesPerPoint) / 1e6
			t.AddRow(
				fmt.Sprintf("%.0fMB", partitionMB),
				mode.String(),
				metrics.FormatDuration(res.IterTimes[0]),
				fmt.Sprintf("%.2fs", later),
				metrics.FormatDuration(res.Elapsed),
				speedup)
			tb.Close()
		}
	}
	return t, nil
}
