package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/metrics"
)

// PilotOverhead reproduces Table II's "pilot overhead" characterization
// (Eval 3) for Pilot-Job across infrastructures: pilot startup time
// (submission → agent running) and the manager's per-task overhead
// measured with zero-length tasks — on HPC, HTC, cloud and the local
// reference backend.
func PilotOverhead(scale float64, tasks int) (*metrics.Table, error) {
	if tasks <= 0 {
		tasks = 128
	}
	tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 60, Seed: 2})
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	t := metrics.NewTable(
		fmt.Sprintf("Table II (Eval 3) — pilot startup and task overhead (%d no-op tasks)", tasks),
		"backend", "pilot_startup", "task_throughput_per_s", "per_task_overhead_ms", "mean_task_wait")

	backends := []struct {
		name, url string
		cores     int
	}{
		{"local (reference)", "local://localhost", 32},
		{"HPC (stampede)", "hpc://stampede", 32},
		{"HTC (osg)", "htc://osg", 32},
		{"cloud (ec2)", "cloud://ec2", 32},
		{"YARN", "yarn://yarn", 32},
	}
	for _, b := range backends {
		mgr := tb.NewManager(nil)
		p, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "ovh", Resource: b.url, Cores: b.cores, Walltime: 2 * time.Hour,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		// Wait for the agent before timing tasks, so startup and task
		// overhead are separated (the decomposition the paper's overhead
		// analysis makes).
		waitCtx, waitCancel := context.WithTimeout(ctx, 4*time.Minute)
		err = p.WaitRunning(waitCtx)
		waitCancel()
		if err != nil {
			return nil, fmt.Errorf("%s: pilot never started: %w", b.name, err)
		}

		start := tb.Clock.Now()
		units := make([]*core.ComputeUnit, 0, tasks)
		for i := 0; i < tasks; i++ {
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name: fmt.Sprintf("noop-%d", i),
				Run:  func(context.Context, core.TaskContext) error { return nil },
			})
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		for _, u := range units {
			if s, err := u.Wait(ctx); s != core.UnitDone {
				return nil, fmt.Errorf("%s: unit %v: %w", b.name, s, err)
			}
		}
		makespan := tb.Clock.Now().Sub(start)
		wait, _, _ := mgr.UnitMetrics()
		throughput := float64(tasks) / makespan.Seconds()
		perTaskMs := makespan.Seconds() / float64(tasks) * 1000
		t.AddRow(b.name,
			metrics.FormatDuration(p.StartupTime()),
			fmt.Sprintf("%.0f", throughput),
			fmt.Sprintf("%.1f", perTaskMs),
			fmt.Sprintf("%.2fs", wait.Mean))
		p.Shutdown()
	}
	return t, nil
}
