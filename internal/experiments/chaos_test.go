package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"gopilot/internal/chaos"
)

// requireVirtual skips chaos tests on non-virtual clocks: fault instants
// and schedule recording are only meaningful there.
func requireVirtual(t *testing.T) {
	t.Helper()
	if DefaultClockMode != ClockVirtual {
		t.Skip("chaos scenario requires the virtual clock")
	}
}

// A zero-fault run must hold every invariant — the suite's false-positive
// floor.
func TestChaosZeroFaultsClean(t *testing.T) {
	requireVirtual(t)
	r, err := Chaos(ChaosOptions{Seed: 42, ZeroFaults: true, Messages: 400, Units: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok() {
		t.Fatalf("zero-fault run violated invariants: %v", r.Violations)
	}
	if r.Processed != r.Produced {
		t.Fatalf("processed %d of %d", r.Processed, r.Produced)
	}
	if r.UnitsDone != 8 || r.UnitsFail != 0 {
		t.Fatalf("units done=%d fail=%d, want 8/0", r.UnitsDone, r.UnitsFail)
	}
	if len(r.Injected) != 0 {
		t.Fatalf("zero-fault plan injected %d faults", len(r.Injected))
	}
	if r.Schedule.Decisions == 0 {
		t.Fatal("recorder captured no decisions")
	}
}

// The default fault mix must be survivable: faults fire, the invariants
// hold anyway.
func TestChaosDefaultFaultsInvariantsHold(t *testing.T) {
	requireVirtual(t)
	r, err := Chaos(ChaosOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok() {
		t.Fatalf("invariant violations under default faults: %v", r.Violations)
	}
	hit := 0
	for _, a := range r.Injected {
		if a.Hit {
			hit++
		}
	}
	if hit == 0 {
		t.Fatal("no fault found a victim — the scenario is not exercising anything")
	}
	if r.Processed != r.Produced {
		t.Fatalf("processed %d of %d", r.Processed, r.Produced)
	}
}

// Same chaos seed, same everything: fault schedule, injection log,
// terminal state and decision trace are bit-identical across 5 runs at
// GOMAXPROCS=4 (run under -race in CI).
func TestChaosSameSeedBitIdentical(t *testing.T) {
	requireVirtual(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var base *ChaosReport
	for run := 0; run < 5; run++ {
		r, err := Chaos(ChaosOptions{Seed: 11, Messages: 400, Units: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Ok() {
			t.Fatalf("run %d: violations: %v", run, r.Violations)
		}
		if base == nil {
			base = r
			continue
		}
		if r.Plan.Hash() != base.Plan.Hash() {
			t.Fatalf("run %d: plan diverged", run)
		}
		if !reflect.DeepEqual(r.Injected, base.Injected) {
			t.Fatalf("run %d: injection log diverged:\n%v\nvs\n%v", run, r.Injected, base.Injected)
		}
		if r.StateHash != base.StateHash {
			t.Fatalf("run %d: state hash diverged: %x vs %x", run, r.StateHash, base.StateHash)
		}
		if r.Schedule.Decisions != base.Schedule.Decisions || r.Schedule.Hash != base.Schedule.Hash {
			t.Fatalf("run %d: schedule diverged: %d/%x vs %d/%x", run,
				r.Schedule.Decisions, r.Schedule.Hash, base.Schedule.Decisions, base.Schedule.Hash)
		}
	}
}

// TestChaosCatchesStaleHandoffBug is the federation analogue of the
// barrier-carry acceptance test: a shard-loss leader handoff that
// restores the commit mark from the promoted shard's stale
// lazily-replicated local mark and skips divergence repair on deposed
// replicas (the deliberate stale-handoff defect) must (a) be caught as
// a cursor-rewind or diverged-replica violation under consumer churn
// and replication lag, (b) replay bit-identically from its seed, and
// (c) bisect to a minimal failing fault prefix that ends at the
// shard-loss fault — the handoff decision — with the passing and
// failing schedules diverging at an identifiable point.
func TestChaosCatchesStaleHandoffBug(t *testing.T) {
	requireVirtual(t)
	shardy := chaos.Config{
		Horizon: 3 * time.Minute,
		Counts: map[chaos.Kind]int{
			chaos.ShardLoss: 1, chaos.WorkerChurn: 4, chaos.ReplicaLag: 2,
		},
	}
	bugOpts := func(seed int64, maxFaults int) ChaosOptions {
		return ChaosOptions{Seed: seed, Faults: shardy, HandoffBug: true,
			Messages: 2400, Units: 4, CostPerMessage: 25 * time.Millisecond,
			MaxFaults: maxFaults}
	}
	// (a) Find a seed the bug breaks: the loss must land while the group
	// is mid-stream (commits before it, so the stale checkpoint lags;
	// commits after it, so the rewound mark is observed) — scan a few.
	var failing *ChaosReport
	var seed int64
	for s := int64(0); s < 8 && failing == nil; s++ {
		r, err := Chaos(bugOpts(s, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Ok() {
			failing, seed = r, s
		}
	}
	if failing == nil {
		t.Fatal("stale-handoff bug not caught on any probed seed")
	}
	sig := false
	for _, v := range failing.Violations {
		if v.Invariant == "cursor-rewind" || v.Invariant == "diverged-replica-after-repair" {
			sig = true
		}
	}
	if !sig {
		t.Fatalf("caught violations lack the stale-handoff signature: %v", failing.Violations)
	}

	// (b) The failing seed replays bit-identically.
	again, err := Chaos(bugOpts(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	if again.StateHash != failing.StateHash || again.Schedule.Hash != failing.Schedule.Hash {
		t.Fatalf("failing seed did not replay bit-identically: %x/%x vs %x/%x",
			again.StateHash, again.Schedule.Hash, failing.StateHash, failing.Schedule.Hash)
	}

	// (c) Bisect to the minimal failing prefix; its last fault must be
	// the shard loss whose handoff restored the stale checkpoint.
	total := len(failing.Plan.Faults)
	prefix := func(n int) int { // MaxFaults encoding: 0 = all, negative = none
		if n == 0 {
			return -1
		}
		return n
	}
	minimal := chaos.BisectFaults(total, func(n int) bool {
		r, err := Chaos(bugOpts(seed, prefix(n)))
		if err != nil {
			t.Fatal(err)
		}
		return !r.Ok()
	})
	if minimal == 0 || minimal > total {
		t.Fatalf("bisection found no failing prefix (minimal=%d of %d)", minimal, total)
	}
	if got := failing.Plan.Faults[minimal-1].Kind; got != chaos.ShardLoss {
		t.Fatalf("minimal prefix ends at %v, want the shard-loss handoff decision", got)
	}
	pass, err := Chaos(bugOpts(seed, prefix(minimal-1)))
	if err != nil {
		t.Fatal(err)
	}
	fail, err := Chaos(bugOpts(seed, minimal))
	if err != nil {
		t.Fatal(err)
	}
	if !pass.Ok() {
		t.Fatalf("prefix below minimal still fails: %v", pass.Violations)
	}
	if from, to, ok := chaos.FirstDivergentBlock(pass.Schedule, fail.Schedule); ok {
		if from >= to {
			t.Fatalf("divergent block [%d,%d) is empty", from, to)
		}
	} else if pass.Schedule.Hash == fail.Schedule.Hash {
		t.Fatal("passing and failing prefixes recorded identical schedules")
	}
}

// The acceptance test of the whole chaos workflow: the deliberately
// reintroduced barrier-carry defect must (a) be caught by the invariant
// suite under worker churn, (b) replay bit-identically from its seed, and
// (c) bisect to a minimal failing fault prefix whose recorded schedule
// pinpoints the first divergent decision against the passing prefix.
func TestChaosCatchesBarrierCarryBug(t *testing.T) {
	requireVirtual(t)
	churny := chaos.Config{
		Horizon: 3 * time.Minute,
		Counts:  map[chaos.Kind]int{chaos.WorkerChurn: 6},
	}
	// Near-saturating load: workers must be mid-batch when churn lands
	// for the defect's ownership overlap to have anything to overlap on.
	bugOpts := func(seed int64, maxFaults int) ChaosOptions {
		return ChaosOptions{Seed: seed, Faults: churny, BarrierBug: true,
			Messages: 3200, Units: 4, CostPerMessage: 100 * time.Millisecond,
			MaxFaults: maxFaults}
	}
	// (a) Find a seed the bug breaks. The defect needs a churn to land
	// while the previous churn's barrier still has a straggler, so not
	// every seed trips it; scan a few.
	var failing *ChaosReport
	var seed int64
	for s := int64(0); s < 8 && failing == nil; s++ {
		r, err := Chaos(bugOpts(s, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Ok() {
			failing, seed = r, s
		}
	}
	if failing == nil {
		t.Fatal("barrier-carry bug not caught on any probed seed")
	}
	// The violation must be the bug's signature, not collateral noise.
	sig := false
	for _, v := range failing.Violations {
		if v.Invariant == "exactly-once" || v.Invariant == "stranded-barrier" {
			sig = true
		}
	}
	if !sig {
		t.Fatalf("caught violations lack the bug's signature: %v", failing.Violations)
	}

	// (b) The failing seed replays bit-identically.
	again, err := Chaos(bugOpts(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	if again.StateHash != failing.StateHash || again.Schedule.Hash != failing.Schedule.Hash {
		t.Fatalf("failing seed did not replay bit-identically: %x/%x vs %x/%x",
			again.StateHash, again.Schedule.Hash, failing.StateHash, failing.Schedule.Hash)
	}

	// (c) Bisect to the minimal failing fault prefix...
	total := len(failing.Plan.Faults)
	prefix := func(n int) int { // MaxFaults encoding: 0 = all, negative = none
		if n == 0 {
			return -1
		}
		return n
	}
	minimal := chaos.BisectFaults(total, func(n int) bool {
		r, err := Chaos(bugOpts(seed, prefix(n)))
		if err != nil {
			t.Fatal(err)
		}
		return !r.Ok()
	})
	if minimal == 0 || minimal > total {
		t.Fatalf("bisection found no failing prefix (minimal=%d of %d)", minimal, total)
	}
	// ...and the last passing prefix's schedule must diverge from the
	// failing one at an identifiable first block of decisions.
	pass, err := Chaos(bugOpts(seed, prefix(minimal-1)))
	if err != nil {
		t.Fatal(err)
	}
	fail, err := Chaos(bugOpts(seed, minimal))
	if err != nil {
		t.Fatal(err)
	}
	from, to, ok := chaos.FirstDivergentBlock(pass.Schedule, fail.Schedule)
	if !ok {
		// Divergence can also live past the last common checkpoint; the
		// traces must still differ somewhere.
		if pass.Schedule.Hash == fail.Schedule.Hash {
			t.Fatal("passing and failing prefixes recorded identical schedules")
		}
	} else if from >= to {
		t.Fatalf("divergent block [%d,%d) is empty", from, to)
	}
}
