package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"gopilot/internal/chaos"
	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/infra/hpc"
	"gopilot/internal/metrics"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// spineVariant selects what is added on top of the fixed base workload.
type spineVariant int

const (
	baseOnly spineVariant = iota
	// extraPilot submits one additional pilot (to the cloud backend) after
	// the base pilots.
	extraPilot
	// extraBackend registers a whole additional HPC machine ("frontera")
	// and submits a pilot to it after the base pilots.
	extraBackend
	// extraRetryUnit adds a short-walltime local pilot and, after the base
	// units, an oversized unit that loses that pilot mid-execution and
	// retries — exercising the planner's "retry"/<ordinal> jitter subtree.
	extraRetryUnit
	// extraChaosWiring attaches the full chaos apparatus at zero fault
	// rate: a plan compiled from the root's "chaos"/... subtree (its draws
	// must land there and nowhere else), a running engine with an empty
	// schedule, and the vclock schedule recorder.
	extraChaosWiring
)

// spineObservation records every pre-existing component's observable draw
// sequence from one run of the fixed workload.
type spineObservation struct {
	HPCAQueueWaits metrics.Summary
	HTCMatchDelays metrics.Summary
	PilotDraws     map[string]uint64 // first draw of each base pilot's stream
	UnitDraws      map[string]uint64 // first draw of each unit's stream
}

// runSpineWorkload drives the same base workload — two stampede pilots,
// one osg pilot, six units — on a seed-42 testbed, optionally with one
// extra component added AFTER the base ones, and returns what the base
// components drew.
func runSpineWorkload(t *testing.T, v spineVariant) spineObservation {
	t.Helper()
	tb := NewTestbed(TestbedConfig{Scale: testScale, Seed: 42})
	defer tb.Close()
	mgr := tb.NewManager(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	basePilots := make([]*core.Pilot, 0, 3)
	for _, d := range []core.PilotDescription{
		{Name: "pA", Resource: "hpc://stampede", Cores: 32, Walltime: 4 * time.Hour},
		{Name: "pB", Resource: "hpc://stampede", Cores: 16, Walltime: 4 * time.Hour},
		{Name: "pH", Resource: "htc://osg", Cores: 2, Walltime: 4 * time.Hour},
	} {
		p, err := mgr.SubmitPilot(d)
		if err != nil {
			t.Fatal(err)
		}
		basePilots = append(basePilots, p)
	}

	// The added component comes after the pre-existing ones, mirroring an
	// experimenter extending a testbed.
	var doomed *core.Pilot
	switch v {
	case extraChaosWiring:
		if tb.Virtual != nil {
			tb.Virtual.StartRecorder(vclock.RecorderConfig{})
		}
		// Compiling consumes the plan's draws; injecting none (Truncate(0))
		// keeps the run fault-free while the engine still participates.
		plan := chaos.Compile(tb.Root, DefaultChaosFaults())
		engine := chaos.NewEngine(plan.Truncate(0), chaos.Targets{
			Clock: tb.Clock,
			Backends: []chaos.Backend{
				{Name: "stampede", Faults: tb.HPCA.Faults(), OnRecover: mgr.Kick},
				{Name: "osg", Faults: tb.HTC.Faults(), OnRecover: mgr.Kick},
			},
			Storm: tb.HTC.Storm,
		})
		tb.Go(func() { engine.Run(ctx) })
	case extraRetryUnit:
		// A 64-core local pilot that dies 20s in: the oversized unit added
		// below fits nowhere else, rides it, and is requeued with a seeded
		// backoff when the walltime hits.
		p, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "doomed", Resource: "local://localhost", Cores: 64, Walltime: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		doomed = p
	case extraPilot:
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "extra", Resource: "cloud://ec2", Cores: 16, Walltime: 4 * time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	case extraBackend:
		frontera := hpc.New(hpc.Config{
			Name: "frontera", Nodes: 16, CoresPerNode: 16,
			QueueWait: dist.LogNormalFrom(tb.Root.Named("infra/hpc/frontera", "queue-wait"), 30, 0.5),
			Backfill:  true,
			Clock:     tb.Clock,
			Stream:    tb.Root.Named("infra/hpc/frontera"),
		})
		defer frontera.Shutdown()
		tb.Registry.Register(saga.NewHPCService(frontera, tb.Clock))
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "extra", Resource: "hpc://frontera", Cores: 16, Walltime: 4 * time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	}

	obs := spineObservation{
		PilotDraws: make(map[string]uint64),
		UnitDraws:  make(map[string]uint64),
	}
	draws := make(chan [2]interface{}, 16)
	units := make([]*core.ComputeUnit, 0, 6)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("u%d", i)
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name: name,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				draws <- [2]interface{}{name, tc.Stream.Uint64()}
				if !tc.Sleep(ctx, time.Second) {
					return ctx.Err()
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, u)
	}
	// The retrying unit comes after every base unit, so the base units'
	// ordinals — and with them their streams — are untouched.
	var retrier *core.ComputeUnit
	if v == extraRetryUnit {
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name: "retrier", Cores: 64, MaxRetries: 2,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				if !tc.Sleep(ctx, time.Hour) {
					return ctx.Err()
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		retrier = u
	}
	for _, u := range units {
		if s, err := u.Wait(ctx); s != core.UnitDone {
			t.Fatalf("unit %s: %v (%v)", u.ID(), s, err)
		}
	}
	if v == extraRetryUnit {
		// Make sure the retry actually fired — one budget charge, one
		// jitter draw — before sampling the base components.
		if s, err := doomed.Wait(ctx); !s.Terminal() {
			t.Fatalf("doomed pilot: %v (%v)", s, err)
		}
		for retrier.State() != core.UnitPending {
			if !tb.Clock.Sleep(ctx, 100*time.Millisecond) {
				t.Fatalf("retrier never requeued: %v", retrier.State())
			}
		}
		if retrier.Attempts() < 1 {
			t.Fatalf("retrier never executed before the pilot died")
		}
	}
	// Queue-wait/match-delay observations are recorded when jobs start, so
	// make sure every base pilot actually came up before sampling stats.
	for _, p := range basePilots {
		if err := p.WaitRunning(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(draws)
	for d := range draws {
		obs.UnitDraws[d[0].(string)] = d[1].(uint64)
	}
	for _, p := range basePilots {
		obs.PilotDraws[p.ID()] = p.Stream().Uint64()
	}
	obs.HPCAQueueWaits = tb.HPCA.QueueWaitStats()
	obs.HTCMatchDelays = tb.HTC.MatchDelayStats()
	return obs
}

// TestComponentInsensitivity is the seeding spine's headline contract:
// adding a pilot — or registering an entire additional backend and
// submitting a pilot to it, or appending a unit whose retries consume
// planner backoff-jitter draws — to a same-seed testbed leaves every
// pre-existing component's draw sequence bit-identical. Under the old
// cfg.Seed+N scheme an added backend renumbered every later component's
// seed, and under the shared eviction rng an added job shifted every
// other job's draws; a shared retry rng would likewise let one unit's
// failures shift every other unit's timeline.
func TestComponentInsensitivity(t *testing.T) {
	base := runSpineWorkload(t, baseOnly)
	if base.HPCAQueueWaits.N < 2 {
		t.Fatalf("workload exercised only %d stampede jobs; want >= 2", base.HPCAQueueWaits.N)
	}
	if base.HTCMatchDelays.N < 2 {
		t.Fatalf("workload exercised only %d osg glideins; want >= 2", base.HTCMatchDelays.N)
	}
	for name, v := range map[string]spineObservation{
		"extra-pilot":        runSpineWorkload(t, extraPilot),
		"extra-backend":      runSpineWorkload(t, extraBackend),
		"extra-retry-unit":   runSpineWorkload(t, extraRetryUnit),
		"extra-chaos-wiring": runSpineWorkload(t, extraChaosWiring),
	} {
		if !reflect.DeepEqual(base.HPCAQueueWaits, v.HPCAQueueWaits) {
			t.Errorf("%s: stampede queue-wait draws shifted:\n base %+v\n got  %+v",
				name, base.HPCAQueueWaits, v.HPCAQueueWaits)
		}
		if !reflect.DeepEqual(base.HTCMatchDelays, v.HTCMatchDelays) {
			t.Errorf("%s: osg match-delay draws shifted:\n base %+v\n got  %+v",
				name, base.HTCMatchDelays, v.HTCMatchDelays)
		}
		if !reflect.DeepEqual(base.PilotDraws, v.PilotDraws) {
			t.Errorf("%s: pre-existing pilots' streams shifted:\n base %v\n got  %v",
				name, base.PilotDraws, v.PilotDraws)
		}
		if !reflect.DeepEqual(base.UnitDraws, v.UnitDraws) {
			t.Errorf("%s: pre-existing units' streams shifted:\n base %v\n got  %v",
				name, base.UnitDraws, v.UnitDraws)
		}
	}
}

// TestUnitStreamPlacementIndependent pins a subtler half of the contract:
// a unit's stream is fixed by its submission ordinal, not by which pilot
// executes it — so even when extra capacity reroutes units, their draws
// are unchanged (asserted inside TestComponentInsensitivity via
// UnitDraws) and two same-seed managers agree without any pilots in
// common.
func TestUnitStreamPlacementIndependent(t *testing.T) {
	draw := func(resource string) uint64 {
		tb := NewTestbed(TestbedConfig{Scale: testScale, Seed: 7})
		defer tb.Close()
		mgr := tb.NewManager(nil)
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "p", Resource: resource, Cores: 4, Walltime: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		out := make(chan uint64, 1)
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name: "probe",
			Run: func(_ context.Context, tc core.TaskContext) error {
				out <- tc.Stream.Uint64()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if s, err := u.Wait(ctx); s != core.UnitDone {
			t.Fatalf("unit: %v (%v)", s, err)
		}
		return <-out
	}
	onLocal := draw("local://localhost")
	onYarn := draw("yarn://yarn")
	if onLocal != onYarn {
		t.Fatalf("unit draw depends on placement: local %d vs yarn %d", onLocal, onYarn)
	}
}
