package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/chaos"
	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/streaming"
	"gopilot/internal/vclock"
)

// This file is E13's chaos-enabled variant: the full stack — two
// managers (a streaming consumer group on a local pilot, a batch
// workload on HPC/HTC/cloud pilots kept alive by supervisors) — run
// under a seed-driven fault plan while the chaos invariant suite watches
// continuously. The scenario is the reproduction vehicle of the chaos
// workflow: a seed that breaks an invariant replays bit-identically, its
// schedule records in vclock, and cmd/chaosreplay bisects it.

// ChaosOptions parameterizes the chaos scenario. The zero value runs the
// default fault mix at seed 0.
type ChaosOptions struct {
	// Seed is the experiment root seed; the fault plan and every workload
	// draw derive from it.
	Seed int64
	// Faults overrides the fault mix; a nil Counts map takes the default
	// mix (DefaultChaosFaults). Chaos draws live on the root's
	// "chaos"/... subtree, so any mix leaves workload draws untouched.
	Faults chaos.Config
	// ZeroFaults keeps the full chaos wiring (engine, checker, recorder)
	// but compiles an empty plan — the insensitivity baseline.
	ZeroFaults bool
	// BarrierBug enables the deliberate barrier-carry defect
	// (streaming.EnableBarrierCarryBug) so tests can prove the invariant
	// suite catches it. Never set outside tests/cmd/chaosreplay.
	BarrierBug bool
	// HandoffBug enables the deliberate stale-handoff defect
	// (streaming.EnableStaleHandoffBug): a shard-loss promotion restores
	// the commit mark from the promoted shard's stale lazily-replicated
	// local mark (cursor-rewind) and skips divergence repair on deposed
	// replicas (diverged-replica-after-repair). Never set outside
	// tests/cmd/chaosreplay.
	HandoffBug bool
	// MaxFaults truncates the compiled plan to its first MaxFaults faults
	// (the bisection probe): 0 keeps the full plan, negative keeps none.
	MaxFaults int
	// Recorder configures schedule recording (defaults apply; recording
	// is always on — the scenario forces the virtual clock).
	Recorder vclock.RecorderConfig
	// Messages is the number of produced stream messages (default 1500).
	Messages int
	// Units is the batch workload size (default 24).
	Units int
	// CostPerMessage is the group's modeled per-message handling cost
	// (default 5ms). Raising it keeps workers mid-batch more of the time,
	// which is what churn-sensitive defects need to manifest.
	CostPerMessage time.Duration
}

// DefaultChaosFaults is the standard fault mix: every kind represented,
// several windowed outages, over a 4-minute horizon. The single
// shard-loss is deliberate: the scenario's 3-shard cluster refuses to
// lose its last live shard, and one loss per run already exercises the
// whole handoff/re-replication path.
func DefaultChaosFaults() chaos.Config {
	return chaos.Config{
		Horizon: 4 * time.Minute,
		Counts: map[chaos.Kind]int{
			chaos.BackendOutage:   3,
			chaos.PilotCrash:      3,
			chaos.EvictStorm:      1,
			chaos.PartitionStall:  2,
			chaos.CommitSkew:      1,
			chaos.WorkerChurn:     3,
			chaos.ShardLoss:       1,
			chaos.ShardLink:       1,
			chaos.ReplicaLag:      2,
			chaos.TornReplication: 1,
			chaos.CrashMidCatchup: 1,
		},
	}
}

// ChaosReport is the scenario outcome.
type ChaosReport struct {
	Seed       int64
	Plan       chaos.Plan
	Injected   []chaos.Applied
	Violations []chaos.Violation
	Produced   int
	Processed  int
	UnitsDone  int
	UnitsFail  int
	Rebalances int
	// StateHash fingerprints the terminal state (unit states and
	// attempts, commit marks, processed count, rebalances, plan hash):
	// two same-seed runs must agree bit-for-bit.
	StateHash uint64
	// Schedule is the recorded decision trace, snapshotted at a fixed
	// point before teardown.
	Schedule vclock.RecorderState
}

// Ok reports whether every invariant held.
func (r *ChaosReport) Ok() bool { return len(r.Violations) == 0 }

// Chaos runs the chaos scenario. It forces the virtual clock: fault
// injection at exact instants and schedule recording are only meaningful
// there.
func Chaos(opts ChaosOptions) (*ChaosReport, error) {
	if opts.Messages <= 0 {
		opts.Messages = 1500
	}
	if opts.Units <= 0 {
		opts.Units = 24
	}
	if opts.CostPerMessage <= 0 {
		opts.CostPerMessage = 5 * time.Millisecond
	}
	if opts.Faults.Counts == nil {
		opts.Faults = DefaultChaosFaults()
	}
	if opts.ZeroFaults {
		opts.Faults.Counts = map[chaos.Kind]int{}
	}
	if opts.BarrierBug {
		streaming.EnableBarrierCarryBug(true)
		defer streaming.EnableBarrierCarryBug(false)
	}
	if opts.HandoffBug {
		streaming.EnableStaleHandoffBug(true)
		defer streaming.EnableStaleHandoffBug(false)
	}

	tb := NewTestbed(TestbedConfig{Mode: ClockVirtual, QueueWaitMean: 5, Seed: opts.Seed})
	defer tb.Close()
	tb.Virtual.StartRecorder(opts.Recorder)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	checker := chaos.NewChecker(tb.Clock)
	plan := chaos.Compile(tb.Root, opts.Faults)
	if opts.MaxFaults != 0 {
		plan = plan.Truncate(max(opts.MaxFaults, 0))
	}

	// --- Streaming side: a 3-shard federated cluster + consumer group
	// on a local pilot. Offsets persist to the cluster's KV, so group
	// commits drive retention and shard handoffs find durable cursors.
	const topic = "chaos-events"
	const parts = 4
	cluster := streaming.NewCluster(streaming.ClusterConfig{
		Name: "chaos", Shards: 3, Replication: 3, HandoffDelay: 2 * time.Second,
		AppendCost: time.Millisecond, FetchLatency: time.Millisecond,
		OnCommit: checker.OnCommit, Clock: tb.Clock,
	})
	defer cluster.Close()
	if err := cluster.CreateTopic(topic, parts); err != nil {
		return nil, err
	}
	mgrS := tb.NewManager(nil)
	if _, err := mgrS.SubmitPilot(core.PilotDescription{
		Name: "stream", Resource: "local://localhost", Cores: 12, Walltime: 4 * time.Hour,
	}); err != nil {
		return nil, err
	}
	group, err := streaming.StartGroup(ctx, mgrS, cluster, streaming.GroupConfig{
		Name: "chaos-group", Topic: topic, Workers: 3, BatchSize: 16,
		CostPerMessage: opts.CostPerMessage,
		Offsets:        cluster.Offsets(),
		Stream:         tb.Root.Named("streaming/group/chaos-group"),
		Handler: func(_ context.Context, _ core.TaskContext, m streaming.Message) error {
			checker.Handled(m.Partition, m.Offset)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	defer group.Stop()

	// --- Batch side: HPC/HTC/cloud pilots under supervisors. ---
	mgrB := tb.NewManager(nil)
	descs := []core.PilotDescription{
		{Name: "hpc", Resource: "hpc://stampede", Cores: 16, Walltime: time.Hour,
			UnitPickupDelay: 300 * time.Millisecond},
		{Name: "htc", Resource: "htc://osg", Cores: 8, Walltime: time.Hour,
			UnitPickupDelay: 300 * time.Millisecond},
		{Name: "cloud", Resource: "cloud://ec2", Cores: 8, Walltime: time.Hour,
			UnitPickupDelay: 300 * time.Millisecond},
	}
	supCtx, supCancel := context.WithCancel(ctx)
	defer supCancel()
	supWG := vclock.NewGroup(tb.Clock)
	for _, d := range descs {
		d := d
		supWG.Add(1)
		// Supervisors model the resubmission loop of a resilient client:
		// when a pilot dies (crash, walltime) it is replaced; when the
		// backend is down, submission retries after a backoff — the path
		// that proves outages are survivable, not fatal.
		tb.Go(func() {
			defer supWG.Done()
			for supCtx.Err() == nil {
				p, err := mgrB.SubmitPilot(d)
				if err != nil {
					if !tb.Clock.Sleep(supCtx, 15*time.Second) {
						return
					}
					continue
				}
				p.Wait(supCtx)
				if !tb.Clock.Sleep(supCtx, 10*time.Second) {
					return
				}
			}
		})
	}
	for i := 0; i < opts.Units; i++ {
		if _, err := mgrB.SubmitUnit(core.UnitDescription{
			Name: fmt.Sprintf("batch-%d", i), Cores: 1, MaxRetries: 4,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				cost := dist.LogNormalFrom(tc.Stream.Named("cost"), 20, 0.5).Sample()
				if !tc.Sleep(ctx, time.Duration(cost*float64(time.Second))) {
					return ctx.Err()
				}
				return nil
			},
		}); err != nil {
			return nil, err
		}
	}
	// --- Producer, paced to span the fault horizon. ---
	rate := float64(opts.Messages) / (opts.Faults.Horizon.Seconds() * 0.75)
	prodDone := vclock.NewEvent(tb.Clock)
	var prodErr error
	tb.Go(func() {
		defer prodDone.Fire()
		_, prodErr = streaming.ProduceBatched(ctx, cluster, topic, opts.Messages, rate, []byte("event-payload"), 64)
	})

	// --- Chaos engine. ---
	livePilots := func() []*core.Pilot {
		var out []*core.Pilot
		for _, p := range mgrB.Pilots() {
			if !p.State().Terminal() {
				out = append(out, p)
			}
		}
		return out
	}
	engine := chaos.NewEngine(plan, chaos.Targets{
		Clock: tb.Clock,
		Backends: []chaos.Backend{
			{Name: "stampede", Faults: tb.HPCA.Faults(), OnRecover: mgrB.Kick},
			{Name: "osg", Faults: tb.HTC.Faults(), OnRecover: mgrB.Kick},
			{Name: "ec2", Faults: tb.Cloud.Faults(), OnRecover: mgrB.Kick},
		},
		LivePilots: livePilots,
		Storm:      tb.HTC.Storm,
		Topic:      topic,
		Group:      group,
		Cluster:    cluster,
	})
	engDone := vclock.NewEvent(tb.Clock)
	var injected []chaos.Applied
	tb.Go(func() {
		defer engDone.Fire()
		injected = engine.Run(ctx)
	})

	// --- Watchdog: poll until the workload quiesces or the deadline. ---
	// The poll sleeps in virtual time, so even a stranded barrier (the
	// deliberate bug's deadlock mode) keeps the executor live and lands at
	// the deadline instead of hanging.
	deadline := tb.Clock.Now().Add(opts.Faults.Horizon + 10*time.Minute)
	quiesced := func() bool {
		if !prodDone.Fired() || !engDone.Fired() {
			return false
		}
		if checker.HandledCount() < opts.Messages {
			return false
		}
		for _, u := range mgrB.Units() {
			if !u.State().Terminal() {
				return false
			}
		}
		// Replication must drain too: every follower caught up, no recruit
		// still syncing — otherwise the replica-consistency check below
		// would race the catch-up streams it is meant to judge.
		return cluster.UnderReplicated() == 0
	}
	for !quiesced() {
		if tb.Clock.Now().After(deadline) {
			checker.Violate("liveness",
				"workload not quiesced %v past fault horizon: processed %d/%d",
				10*time.Minute, checker.HandledCount(), opts.Messages)
			break
		}
		tb.Clock.Sleep(ctx, 5*time.Second)
	}
	if prodErr != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("chaos: producer: %w", prodErr)
	}
	supCancel()
	supWG.Wait()

	// --- Final invariants, after drift reconciliation settles. ---
	// Two passes: the first detects and corrects any residual drift, the
	// second proves the correction converged (anti-flap: a second scan
	// after the fault cleared must find nothing).
	mgrB.ReconcileOnce()
	mgrB.ReconcileOnce()
	checker.CheckUnits(mgrB.Units())
	checker.CheckPilots(mgrB.Pilots())
	checker.CheckBarrier(group)
	checker.CheckCompleteness(opts.Messages)
	checker.CheckPlacement(cluster)
	checker.CheckReplicas(cluster, topic)

	report := &ChaosReport{
		Seed:       opts.Seed,
		Plan:       plan,
		Injected:   injected,
		Violations: checker.Violations(),
		Produced:   opts.Messages,
		Processed:  checker.HandledCount(),
		Rebalances: group.Rebalances(),
	}
	for _, u := range mgrB.Units() {
		switch u.State() {
		case core.UnitDone:
			report.UnitsDone++
		case core.UnitFailed:
			report.UnitsFail++
		}
	}
	report.StateHash = chaosStateHash(report, mgrB, cluster, topic, parts)
	// Snapshot the schedule at this fixed pre-teardown point so two runs
	// compare traces of identical extent.
	report.Schedule = tb.Virtual.RecorderState()
	return report, nil
}

// chaosStateHash folds the terminal state into one comparable word.
func chaosStateHash(r *ChaosReport, mgr *core.Manager, c *streaming.Cluster, topic string, parts int) uint64 {
	h := r.Plan.Hash()
	mix := func(v uint64) {
		h ^= v
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	mix(uint64(r.Processed))
	mix(uint64(r.UnitsDone)<<32 | uint64(uint32(r.UnitsFail)))
	mix(uint64(r.Rebalances))
	for _, u := range mgr.Units() {
		mix(uint64(u.State())<<32 | uint64(uint32(u.Attempts())))
	}
	for p := 0; p < parts; p++ {
		if mark, err := c.Committed(topic, p); err == nil {
			mix(uint64(mark))
		}
		if oldest, err := c.OldestOffset(topic, p); err == nil {
			mix(uint64(oldest)) // retention floor: trims must land identically
		}
		if hw, err := c.AckedOffset(topic, p); err == nil {
			mix(uint64(hw)) // quorum watermark: replication must land identically
		}
	}
	mix(uint64(c.Handoffs()))
	for _, pl := range c.Placement() {
		mix(uint64(pl.Epoch)<<32 | uint64(uint32(pl.Leader)))
	}
	mix(uint64(len(r.Violations)))
	return h
}
