package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/metrics"
	"gopilot/internal/perfmodel"
	"gopilot/internal/saga"
)

// LateBinding reproduces the pilot-abstraction's headline comparison (E9,
// §IV.A): running N tasks as individual batch jobs (each paying its own
// queue wait) versus one pilot that pays a single queue wait and
// late-binds tasks onto it. DES-model predictions accompany both
// measurements. Shape: direct submission's makespan is governed by the
// *maximum* of N queue waits, the pilot's by one wait plus packed
// execution; the pilot wins increasingly with N.
func LateBinding(scale float64) (*metrics.Table, error) {
	const (
		taskSeconds = 60
		pilotCores  = 32
		queueMean   = 600
		queueCV     = 1.0
	)
	task := time.Duration(taskSeconds) * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	t := metrics.NewTable(
		fmt.Sprintf("E9 — direct submission vs pilot (task=%ds, queue wait lognormal mean %ds)", taskSeconds, queueMean),
		"tasks", "direct_measured", "direct_model", "pilot_measured", "pilot_model", "pilot_speedup")

	for _, n := range []int{16, 64, 256} {
		// ---- direct: one batch job per task on the HPC simulator ----------
		tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: queueMean, QueueWaitCV: queueCV, Seed: int64(100 + n)})
		hpcSvc, err := tb.Registry.Lookup("hpc://stampede")
		if err != nil {
			tb.Close()
			return nil, err
		}
		start := tb.Clock.Now()
		jobs := make([]saga.Job, 0, n)
		for i := 0; i < n; i++ {
			j, err := hpcSvc.Submit(saga.Description{
				Name:       fmt.Sprintf("direct-%d", i),
				TotalCores: 1,
				Walltime:   time.Hour,
				Payload: func(ctx context.Context, _ infra.Allocation) error {
					if !tb.Clock.Sleep(ctx, task) {
						return ctx.Err()
					}
					return nil
				},
			})
			if err != nil {
				tb.Close()
				return nil, err
			}
			jobs = append(jobs, j)
		}
		for _, j := range jobs {
			if s, err := j.Wait(ctx); s != saga.Done {
				tb.Close()
				return nil, fmt.Errorf("direct job %v: %w", s, err)
			}
		}
		directMeasured := tb.Clock.Now().Sub(start)
		tb.Close()

		// ---- pilot: one placeholder, late-bound tasks ----------------------
		tb2 := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: queueMean, QueueWaitCV: queueCV, Seed: int64(200 + n)})
		mgr := tb2.NewManager(nil)
		start2 := tb2.Clock.Now()
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "lb", Resource: "hpc://stampede", Cores: pilotCores, Walltime: 6 * time.Hour,
		}); err != nil {
			tb2.Close()
			return nil, err
		}
		units := make([]*core.ComputeUnit, 0, n)
		for i := 0; i < n; i++ {
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name: fmt.Sprintf("lb-%d", i),
				Run: func(ctx context.Context, tc core.TaskContext) error {
					if !tc.Sleep(ctx, task) {
						return ctx.Err()
					}
					return nil
				},
			})
			if err != nil {
				tb2.Close()
				return nil, err
			}
			units = append(units, u)
		}
		for _, u := range units {
			if s, err := u.Wait(ctx); s != core.UnitDone {
				tb2.Close()
				return nil, fmt.Errorf("pilot unit %v: %w", s, err)
			}
		}
		pilotMeasured := tb2.Clock.Now().Sub(start2)
		tb2.Close()

		// ---- models --------------------------------------------------------
		// The cluster runs our jobs plus nothing else, so the slot limit for
		// direct submission is effectively the machine size.
		directModel := perfmodel.DirectSubmissionSim(n, 64*16,
			task, dist.LogNormalFrom(tb.Root.Named("perfmodel/direct-queue"), queueMean, queueCV))
		pilotModel := perfmodel.PilotSubmissionSim(n, pilotCores,
			task, dist.LogNormalFrom(tb2.Root.Named("perfmodel/pilot-queue"), queueMean, queueCV), 50*time.Millisecond)

		t.AddRow(n,
			metrics.FormatDuration(directMeasured),
			metrics.FormatDuration(directModel),
			metrics.FormatDuration(pilotMeasured),
			metrics.FormatDuration(pilotModel),
			fmt.Sprintf("%.2f", metrics.Speedup(directMeasured, pilotMeasured)))
	}
	return t, nil
}

// DynamicScaling demonstrates R3 (dynamism): a workload outgrows its HPC
// pilot, and the manager bursts to cloud resources at runtime — the BigJob
// cloud extension case study [63]. The table contrasts time-to-completion
// with and without the burst.
func DynamicScaling(scale float64) (*metrics.Table, error) {
	const n = 64
	task := 120 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	t := metrics.NewTable(
		"E9b — runtime cloud bursting (64 × 2min tasks, 8-core HPC pilot)",
		"strategy", "makespan", "hpc_tasks", "cloud_tasks", "cloud_cost")

	run := func(burst bool) error {
		tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 30, Seed: 13})
		defer tb.Close()
		mgr := tb.NewManager(nil)
		start := tb.Clock.Now()
		hpcPilot, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "small-hpc", Resource: "hpc://stampede", Cores: 8, Walltime: 6 * time.Hour,
		})
		if err != nil {
			return err
		}
		units := make([]*core.ComputeUnit, 0, n)
		for i := 0; i < n; i++ {
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name: fmt.Sprintf("burst-%d", i),
				Run: func(ctx context.Context, tc core.TaskContext) error {
					if !tc.Sleep(ctx, task) {
						return ctx.Err()
					}
					return nil
				},
			})
			if err != nil {
				return err
			}
			units = append(units, u)
		}
		var cloudPilot *core.Pilot
		if burst {
			// The application notices the deep queue and requests cloud
			// resources at runtime.
			cloudPilot, err = mgr.SubmitPilot(core.PilotDescription{
				Name: "burst-cloud", Resource: "cloud://ec2", Cores: 24, Walltime: 6 * time.Hour,
				Attributes: map[string]string{"vm_type": "c5.2xlarge"},
			})
			if err != nil {
				return err
			}
		}
		for _, u := range units {
			if s, err := u.Wait(ctx); s != core.UnitDone {
				return fmt.Errorf("unit %v: %w", s, err)
			}
		}
		makespan := tb.Clock.Now().Sub(start)
		cloudTasks := 0
		if cloudPilot != nil {
			cloudTasks = cloudPilot.UnitsCompleted()
		}
		strategy := "HPC pilot only"
		if burst {
			strategy = "HPC + cloud burst"
		}
		t.AddRow(strategy,
			metrics.FormatDuration(makespan),
			hpcPilot.UnitsCompleted(),
			cloudTasks,
			fmt.Sprintf("%.4f", tb.Cloud.Cost()))
		return nil
	}
	if err := run(false); err != nil {
		return nil, err
	}
	if err := run(true); err != nil {
		return nil, err
	}
	return t, nil
}
