package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/apps/enkf"
	"gopilot/internal/apps/mdanalysis"
	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/metrics"
	"gopilot/internal/miniapp"
	"gopilot/internal/perfmodel"
)

// Fig5Loop reproduces Figure 5's iterative build-assess-refine feedback
// loop, automated by the Mini-App framework (E10): sweep a streaming
// configuration, fit a performance model, use the model to *pick* the
// cheapest configuration meeting a throughput target, then verify the
// choice with a fresh run. The loop's output is the refined configuration
// — exactly the knowledge-generation cycle the paper describes.
func Fig5Loop(scale float64, frames int) (*metrics.Table, []string, error) {
	if frames <= 0 {
		frames = 600
	}

	// Build + assess: the Mini-App sweep.
	design := miniapp.Design{Factors: []miniapp.Factor{
		{Name: "partitions", Levels: []float64{1, 2, 4}},
	}}
	runner := miniapp.Runner{
		Name:   "fig5-sweep",
		Design: design,
		Run: func(ctx context.Context, cfg map[string]float64, _ int) (map[string]float64, error) {
			tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 14})
			defer tb.Close()
			parts := int(cfg["partitions"])
			tput, _, err := StreamTrial(tb, parts, parts, frames, 10*time.Millisecond)
			if err != nil {
				return nil, err
			}
			return map[string]float64{"throughput": tput}, nil
		},
	}
	rs, err := runner.Execute(context.Background())
	if err != nil {
		return nil, nil, err
	}
	x, y := rs.Matrix([]string{"partitions"}, "throughput")
	model, err := perfmodel.FitOLS(x, y, []string{"partitions"})
	if err != nil {
		return nil, nil, err
	}

	// Refine: the throughput target is expressed relative to the measured
	// baseline (1.5× the single-partition rate) so the loop is meaningful
	// at any virtual-time compression; pick the smallest partition count
	// whose predicted throughput clears it.
	targetThroughput := 1.5 * y[0]
	chosen := 0
	for p := 1; p <= 16; p++ {
		if model.Predict([]float64{float64(p)}) >= targetThroughput {
			chosen = p
			break
		}
	}
	modelPick := chosen > 0
	if !modelPick {
		// The model can be unreliable under heavy virtual-time compression
		// (noise flattens the slope). A practitioner then refines from the
		// raw sweep instead: take the best measured configuration. The loop
		// still closes — assess fed refine, refine gets verified.
		best := 0
		for i := range y {
			if y[i] > y[best] {
				best = i
			}
		}
		chosen = int(x[best][0])
		targetThroughput = y[best]
	}

	// Verify the refined configuration.
	tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 15})
	verified, _, err := StreamTrial(tb, chosen, chosen, frames, 10*time.Millisecond)
	tb.Close()
	if err != nil {
		return nil, nil, err
	}

	t := metrics.NewTable("Fig. 5 — automated build-assess-refine loop (Mini-App framework)",
		"phase", "configuration", "throughput_msg_s")
	for i := range x {
		t.AddRow("assess (sweep)", fmt.Sprintf("partitions=%g", x[i][0]), fmt.Sprintf("%.0f", y[i]))
	}
	pickLabel := "refine (model pick)"
	if !modelPick {
		pickLabel = "refine (best measured)"
	}
	t.AddRow(pickLabel, fmt.Sprintf("partitions=%d", chosen),
		fmt.Sprintf("%.0f (predicted)", model.Predict([]float64{float64(chosen)})))
	t.AddRow("verify (rerun)", fmt.Sprintf("partitions=%d", chosen), fmt.Sprintf("%.0f (measured)", verified))
	notes := []string{
		fmt.Sprintf("model: %s", model),
		fmt.Sprintf("target: %d msg/s; refined choice: %d partitions; verification %s",
			int(targetThroughput), chosen,
			map[bool]string{true: "MET", false: "MISSED"}[verified >= targetThroughput*0.9]),
	}
	return t, notes, nil
}

// AblationAlgorithm reproduces the §VI lesson "Optimize Application
// Algorithms" [53] (E11): the early-break Hausdorff algorithm versus
// scaling out the naive one. Both real computations run as pilot tasks;
// the table shows that the algorithmic improvement beats adding cores.
func AblationAlgorithm(scale float64) (*metrics.Table, error) {
	const (
		atoms = 600
		pairs = 12
	)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Pre-generate trajectory frames for the pairwise comparison. The
	// frames are shared input data across both variants' testbeds, so they
	// hang off the exhibit's own root (same seed as its testbeds), not off
	// any one testbed.
	trajRoot := dist.NewStream(16).Named("trajectory")
	frames := make([]mdanalysis.Frame, pairs+1)
	for i := range frames {
		frames[i] = mdanalysis.GenerateTrajectory(atoms, 1, 1.0, trajRoot.SplitLabel(uint64(i)))[0]
	}

	t := metrics.NewTable(
		fmt.Sprintf("E11 — algorithm vs scale-out (Hausdorff, %d pairs × %d atoms)", pairs, atoms),
		"variant", "cores", "makespan_wall_ms", "distance_ops")

	run := func(name string, cores int, early bool) error {
		tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 16})
		defer tb.Close()
		mgr := tb.NewManager(nil)
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "md", Resource: "local://localhost", Cores: cores,
		}); err != nil {
			return err
		}
		totalOps := 0
		var opsMu sync.Mutex
		wallStart := time.Now()
		units := make([]*core.ComputeUnit, 0, pairs)
		for i := 0; i < pairs; i++ {
			a, b := frames[i], frames[i+1]
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name: fmt.Sprintf("hd-%d", i),
				Run: func(ctx context.Context, tc core.TaskContext) error {
					// The Hausdorff scans are pure CPU over shared read-only
					// frames: run them as a parallel compute phase so the
					// scaled-out variants use real cores. Only the ops
					// accumulation — shared mutation — happens back on the
					// token, under a mutex for the non-virtual clock modes.
					var ops int
					if !tc.Compute(ctx, func() {
						if early {
							_ = mdanalysis.HausdorffEarlyBreak(a, b)
						} else {
							_ = mdanalysis.HausdorffNaive(a, b)
						}
						ops = mdanalysis.DistanceOps(a, b, early)
					}) {
						return ctx.Err()
					}
					opsMu.Lock()
					totalOps += ops
					opsMu.Unlock()
					return nil
				},
			})
			if err != nil {
				return err
			}
			units = append(units, u)
		}
		for _, u := range units {
			if s, err := u.Wait(ctx); s != core.UnitDone {
				return fmt.Errorf("unit %v: %w", s, err)
			}
		}
		t.AddRow(name, cores, fmt.Sprintf("%.1f", float64(time.Since(wallStart).Microseconds())/1000), totalOps)
		return nil
	}
	if err := run("naive O(n·m)", 1, false); err != nil {
		return nil, err
	}
	if err := run("naive O(n·m), scaled out", 8, false); err != nil {
		return nil, err
	}
	if err := run("early-break", 1, true); err != nil {
		return nil, err
	}
	if err := run("early-break, scaled out", 8, true); err != nil {
		return nil, err
	}
	return t, nil
}

// EnKFAdaptive reproduces the autonomic ensemble case study [50] (E12):
// per-cycle ensemble sizes under adaptive control, showing runtime task
// creation (R3) with a bounded filter error.
func EnKFAdaptive(scale float64) (*metrics.Table, error) {
	tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 10, Seed: 17})
	defer tb.Close()
	mgr := tb.NewManager(nil)
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "enkf", Resource: "local://localhost", Cores: 32, Walltime: 2 * time.Hour,
	}); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := enkf.Run(ctx, mgr, enkf.Config{
		StateDim: 3, InitialEnsemble: 8, MinEnsemble: 4, MaxEnsemble: 32,
		Cycles: 8, ForecastTime: dist.Constant(10),
		SpreadTarget: 0.15, Adaptive: true, Stream: tb.Root.Named("app/enkf"),
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("E12 — adaptive EnKF (runtime task creation; %d resizes, final ensemble %d)",
			res.Resizes, res.FinalEnsemble),
		"cycle", "members", "spread", "rmse", "cycle_time")
	for _, c := range res.Cycles {
		t.AddRow(c.Cycle, c.Members,
			fmt.Sprintf("%.3f", c.Spread),
			fmt.Sprintf("%.3f", c.RMSE),
			metrics.FormatDuration(c.Duration))
	}
	return t, nil
}
