package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/apps/lightsource"
	"gopilot/internal/core"
	"gopilot/internal/metrics"
	"gopilot/internal/miniapp"
	"gopilot/internal/perfmodel"
	"gopilot/internal/streaming"
)

// StreamTrial runs one streaming configuration: `partitions` broker
// partitions, matching processor workers, n frames, per-frame handler
// cost, returning throughput (msg/s) and latency stats.
func StreamTrial(tb *Testbed, partitions, workers, frames int, handlerCost time.Duration) (throughput float64, lat metrics.Summary, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	broker := streaming.NewBroker(streaming.BrokerConfig{
		AppendCost: 2 * time.Millisecond, FetchLatency: time.Millisecond, Clock: tb.Clock,
	})
	defer broker.Close()
	topic := fmt.Sprintf("frames-p%d-w%d", partitions, workers)
	if err := broker.CreateTopic(topic, partitions); err != nil {
		return 0, lat, err
	}
	mgr := tb.NewManager(nil)
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "stream", Resource: "local://localhost", Cores: workers + 1, Walltime: 2 * time.Hour,
	}); err != nil {
		return 0, lat, err
	}
	det := lightsource.NewDetector(16, 16, 0.5, 25, 2, tb.Root.Named("detector"))
	proc, err := streaming.StartProcessor(ctx, mgr, broker, streaming.ProcessorConfig{
		Name: "ls", Topic: topic, Workers: workers,
		Stream:         tb.Root.Named("streaming/processor/ls"),
		CostPerMessage: handlerCost,
		// Decode + Reconstruct is pure CPU per frame: run each batch as a
		// parallel compute phase so workers overlap on real cores.
		PureHandler: true,
		Handler: func(ctx context.Context, tc core.TaskContext, m streaming.Message) error {
			f, err := lightsource.Decode(m.Value)
			if err != nil {
				return err
			}
			_ = lightsource.Reconstruct(f, 3)
			return nil
		},
	})
	if err != nil {
		return 0, lat, err
	}
	payload := lightsource.Encode(det.Next())
	if _, err := streaming.Produce(ctx, broker, topic, frames, 0, payload); err != nil {
		return 0, lat, err
	}
	if err := proc.WaitProcessed(ctx, int64(frames)); err != nil {
		return 0, lat, fmt.Errorf("drained %d/%d: %w", proc.Processed(), frames, err)
	}
	proc.Stop()
	return proc.Throughput(), proc.LatencyStats(), nil
}

// Streaming reproduces Table II's Pilot-Streaming evaluation (E7):
// throughput and latency of light-source frame reconstruction as broker
// partitions (and matching processing workers) grow. Shape: throughput
// scales with partitions until the producer or handler saturates; latency
// collapses once consumers keep up.
func Streaming(scale float64, frames int) (*metrics.Table, error) {
	if frames <= 0 {
		frames = 1500
	}
	t := metrics.NewTable(
		fmt.Sprintf("Table II (Eval 3/4) — Pilot-Streaming throughput/latency (%d frames, 10ms handler)", frames),
		"partitions", "workers", "throughput_msg_s", "latency_p50_s", "latency_p95_s")

	for _, parts := range []int{1, 2, 4, 8} {
		tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 8})
		tput, lat, err := StreamTrial(tb, parts, parts, frames, 10*time.Millisecond)
		tb.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(parts, parts,
			fmt.Sprintf("%.0f", tput),
			fmt.Sprintf("%.3f", lat.Median),
			fmt.Sprintf("%.3f", lat.P95))
	}
	return t, nil
}

// ThroughputModel reproduces the statistical performance model of [73]
// (E8): a Mini-App sweep over partition/worker configurations generates
// training data; an OLS model predicts throughput from the configuration;
// a holdout configuration validates it. The table reports the fit and the
// holdout error, mirroring the paper's model-quality reporting.
func ThroughputModel(scale float64, frames int) (*metrics.Table, []string, error) {
	if frames <= 0 {
		frames = 800
	}
	design := miniapp.Design{Factors: []miniapp.Factor{
		{Name: "partitions", Levels: []float64{1, 2, 3, 4, 6}},
	}}
	runner := miniapp.Runner{
		Name:   "throughput-sweep",
		Design: design,
		Run: func(ctx context.Context, cfg map[string]float64, _ int) (map[string]float64, error) {
			tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 9})
			defer tb.Close()
			parts := int(cfg["partitions"])
			tput, lat, err := StreamTrial(tb, parts, parts, frames, 10*time.Millisecond)
			if err != nil {
				return nil, err
			}
			return map[string]float64{"throughput": tput, "latency_p95": lat.P95}, nil
		},
	}
	rs, err := runner.Execute(context.Background())
	if err != nil {
		return nil, nil, err
	}
	x, y := rs.Matrix([]string{"partitions"}, "throughput")
	if len(x) < 4 {
		return nil, nil, fmt.Errorf("sweep produced only %d points", len(x))
	}
	// Hold out the largest configuration, fit on the rest.
	holdX, holdY := x[len(x)-1], y[len(y)-1]
	model, err := perfmodel.FitOLS(x[:len(x)-1], y[:len(y)-1], []string{"partitions"})
	if err != nil {
		return nil, nil, err
	}

	t := metrics.NewTable("Table II (Eval 4) — statistical throughput model [73]",
		"partitions", "measured_msg_s", "predicted_msg_s", "err_%")
	for i := range x {
		pred := model.Predict(x[i])
		t.AddRow(x[i][0],
			fmt.Sprintf("%.0f", y[i]),
			fmt.Sprintf("%.0f", pred),
			fmt.Sprintf("%+.1f", (pred-y[i])/y[i]*100))
	}
	holdErr := (model.Predict(holdX) - holdY) / holdY * 100
	notes := []string{
		fmt.Sprintf("model: %s", model),
		fmt.Sprintf("R² (train) = %.3f", model.R2(x[:len(x)-1], y[:len(y)-1])),
		fmt.Sprintf("holdout (partitions=%g): measured %.0f, predicted %.0f (%+.1f%%)",
			holdX[0], holdY, model.Predict(holdX), holdErr),
	}
	return t, notes, nil
}
