package perfmodel

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Regression is a fitted ordinary-least-squares linear model
// y = b0 + b1·x1 + ... + bk·xk, the statistical-model family the paper
// uses for streaming-throughput prediction [73].
type Regression struct {
	// Names labels the features, for readable model dumps.
	Names []string
	// Coef holds [b0, b1, ..., bk] (intercept first).
	Coef []float64
}

// ErrSingular is returned when the normal equations are not solvable
// (collinear features or too few observations).
var ErrSingular = errors.New("perfmodel: singular design matrix")

// FitOLS fits a linear model with intercept by solving the normal
// equations (XᵀX)b = Xᵀy via Gaussian elimination with partial pivoting.
// x rows are observations, columns features; names may be nil.
func FitOLS(x [][]float64, y []float64, names []string) (*Regression, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("perfmodel: need matching observations, got %d x %d y", n, len(y))
	}
	k := len(x[0])
	for i, row := range x {
		if len(row) != k {
			return nil, fmt.Errorf("perfmodel: ragged row %d", i)
		}
	}
	if n < k+1 {
		return nil, fmt.Errorf("perfmodel: %d observations cannot fit %d coefficients", n, k+1)
	}
	d := k + 1 // intercept column
	// Build XᵀX and Xᵀy with the implicit leading 1-column.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	feature := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < d; i++ {
			fi := feature(x[r], i)
			xty[i] += fi * y[r]
			for j := 0; j < d; j++ {
				xtx[i][j] += fi * feature(x[r], j)
			}
		}
	}
	coef, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	if names == nil {
		names = make([]string, k)
		for i := range names {
			names[i] = fmt.Sprintf("x%d", i+1)
		}
	}
	return &Regression{Names: names, Coef: coef}, nil
}

// solve performs Gaussian elimination with partial pivoting on a (copy of
// a) square system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	d := len(a)
	m := make([][]float64, d)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < d; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < d; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= d; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back-substitute.
	out := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		sum := m[r][d]
		for c := r + 1; c < d; c++ {
			sum -= m[r][c] * out[c]
		}
		out[r] = sum / m[r][r]
	}
	return out, nil
}

// Predict evaluates the model at a feature vector.
func (r *Regression) Predict(x []float64) float64 {
	y := r.Coef[0]
	for i, v := range x {
		if i+1 < len(r.Coef) {
			y += r.Coef[i+1] * v
		}
	}
	return y
}

// R2 returns the coefficient of determination on a dataset.
func (r *Regression) R2(x [][]float64, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i, row := range x {
		d := y[i] - r.Predict(row)
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// RMSE returns the root-mean-square prediction error on a dataset.
func (r *Regression) RMSE(x [][]float64, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var sum float64
	for i, row := range x {
		d := y[i] - r.Predict(row)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(y)))
}

// MAPE returns the mean absolute percentage error (skipping zero targets).
func (r *Regression) MAPE(x [][]float64, y []float64) float64 {
	var sum float64
	var n int
	for i, row := range x {
		if y[i] == 0 {
			continue
		}
		sum += math.Abs((y[i] - r.Predict(row)) / y[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the fitted equation.
func (r *Regression) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "y = %.4g", r.Coef[0])
	for i, name := range r.Names {
		if i+1 >= len(r.Coef) {
			break
		}
		fmt.Fprintf(&b, " + %.4g·%s", r.Coef[i+1], name)
	}
	return b.String()
}
