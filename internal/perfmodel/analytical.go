// Package perfmodel provides the two modeling families the paper's
// evaluation uses (§V.C, Fig. 4): white-box *analytical* models — pilot
// makespan, the replica-exchange runtime model of Thota et al. [72],
// Amdahl's law — and black-box *statistical* models (ordinary least
// squares) used for streaming-throughput prediction [73]. Experiments
// compare these predictions against the concurrent runtime's measurements.
package perfmodel

import (
	"math"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/sim"
)

// PilotMakespan predicts the modeled makespan of a bag of n identical
// tasks of service time t on a pilot with `cores` slots, including pilot
// startup (queue wait + dispatch) and a per-task management overhead.
//
//	T = startup + ceil(n/cores)·t + n·overhead
//
// The n·overhead term models the manager's serial dispatch cost and
// matches the pilot-overhead characterization of E2.
func PilotMakespan(n, cores int, t, startup, perTaskOverhead time.Duration) time.Duration {
	if n <= 0 || cores <= 0 {
		return 0
	}
	waves := (n + cores - 1) / cores
	return startup + time.Duration(waves)*t + time.Duration(n)*perTaskOverhead
}

// SpeedupCurve evaluates strong scaling of PilotMakespan over core counts.
func SpeedupCurve(n int, t, startup, overhead time.Duration, coreCounts []int) map[int]float64 {
	if len(coreCounts) == 0 {
		return nil
	}
	base := PilotMakespan(n, coreCounts[0], t, startup, overhead)
	out := make(map[int]float64, len(coreCounts))
	for _, c := range coreCounts {
		m := PilotMakespan(n, c, t, startup, overhead)
		if m > 0 {
			out[c] = base.Seconds() / m.Seconds()
		}
	}
	return out
}

// Amdahl returns the classic bound on speedup for a workload with the
// given serial fraction on p workers.
func Amdahl(serialFraction float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	if serialFraction < 0 {
		serialFraction = 0
	}
	if serialFraction > 1 {
		serialFraction = 1
	}
	return 1 / (serialFraction + (1-serialFraction)/float64(p))
}

// RexModel is the analytical replica-exchange runtime model (after Thota
// et al. [72]): M replicas, each needing k cores, run MD cycles on a pilot
// of C cores; each cycle is followed by a synchronous exchange phase.
type RexModel struct {
	// Replicas is the ensemble size M.
	Replicas int
	// CoresPerReplica is k.
	CoresPerReplica int
	// PilotCores is C.
	PilotCores int
	// MD is the per-replica MD phase duration per cycle.
	MD time.Duration
	// Exchange is the synchronous exchange phase per cycle.
	Exchange time.Duration
	// Startup is pilot queue wait + dispatch.
	Startup time.Duration
}

// Concurrency returns how many replicas run simultaneously.
func (m RexModel) Concurrency() int {
	if m.CoresPerReplica <= 0 || m.PilotCores <= 0 {
		return 0
	}
	c := m.PilotCores / m.CoresPerReplica
	if c < 1 {
		return 0
	}
	if c > m.Replicas {
		return m.Replicas
	}
	return c
}

// CycleTime returns the modeled duration of one MD+exchange cycle.
func (m RexModel) CycleTime() time.Duration {
	conc := m.Concurrency()
	if conc == 0 {
		return 0
	}
	waves := (m.Replicas + conc - 1) / conc
	return time.Duration(waves)*m.MD + m.Exchange
}

// Total returns the modeled runtime for the given number of cycles.
func (m RexModel) Total(cycles int) time.Duration {
	return m.Startup + time.Duration(cycles)*m.CycleTime()
}

// Efficiency returns useful MD core-time over total pilot core-time for
// the given number of cycles — the utilization the paper's ensemble
// studies report.
func (m RexModel) Efficiency(cycles int) float64 {
	total := m.Total(cycles)
	if total <= 0 || m.PilotCores <= 0 {
		return 0
	}
	useful := float64(cycles) * float64(m.Replicas) * float64(m.CoresPerReplica) * m.MD.Seconds()
	return useful / (float64(m.PilotCores) * total.Seconds())
}

// DirectSubmissionSim predicts, via discrete-event simulation, the
// makespan of running n tasks as *individual batch jobs*: every job pays
// its own sampled queue wait, and at most `slots` jobs run concurrently
// (the user's fair-share allocation). This is the no-pilot baseline of the
// late-binding experiment E9. The qwait distribution must be seeded for
// reproducibility.
func DirectSubmissionSim(n, slots int, t time.Duration, qwait dist.Dist) time.Duration {
	if n <= 0 {
		return 0
	}
	if slots <= 0 {
		slots = n
	}
	eng := sim.NewEngine()
	free := slots
	var queue []time.Duration // eligibility times of waiting jobs
	var makespan time.Duration

	var tryStart func(e *sim.Engine)
	finish := func(e *sim.Engine) {
		free++
		if e.Now() > makespan {
			makespan = e.Now()
		}
		tryStart(e)
	}
	tryStart = func(e *sim.Engine) {
		for free > 0 && len(queue) > 0 && queue[0] <= e.Now() {
			queue = queue[1:]
			free--
			e.After(t, finish)
		}
	}
	for i := 0; i < n; i++ {
		eligible := time.Duration(qwait.Sample() * float64(time.Second))
		eng.At(eligible, func(e *sim.Engine) {
			// Keep the queue sorted by eligibility (arrival order here).
			queue = append(queue, e.Now())
			tryStart(e)
		})
	}
	eng.Run()
	return makespan
}

// PilotSubmissionSim predicts the pilot-based makespan for the same
// workload: one placeholder job pays one queue wait, then n tasks run
// back-to-back on `cores` slots with a per-task dispatch overhead.
func PilotSubmissionSim(n, cores int, t time.Duration, qwait dist.Dist, perTaskOverhead time.Duration) time.Duration {
	startup := time.Duration(qwait.Sample() * float64(time.Second))
	return PilotMakespan(n, cores, t, startup, perTaskOverhead)
}

// CrossoverTasks estimates the smallest task count at which the pilot
// approach beats direct submission, by sweeping n (geometrically) through
// both simulators. It returns 0 if the pilot wins even for a single task,
// and -1 if direct submission wins throughout the sweep limit.
func CrossoverTasks(slots, cores int, t time.Duration, mkQwait func() dist.Dist, overhead time.Duration, maxN int) int {
	prevWinner := 0 // unknown
	for n := 1; n <= maxN; n *= 2 {
		direct := DirectSubmissionSim(n, slots, t, mkQwait())
		pilot := PilotSubmissionSim(n, cores, t, mkQwait(), overhead)
		if pilot < direct {
			if n == 1 {
				return 0
			}
			if prevWinner == 1 {
				return n
			}
		}
		if pilot < direct {
			prevWinner = 2
		} else {
			prevWinner = 1
		}
	}
	if prevWinner == 2 {
		return 0
	}
	return -1
}

// Percentile of the maximum of n iid samples — a closed-form helper for
// reasoning about direct submission: the expected makespan is governed by
// the max queue wait among n jobs. For a distribution with CDF F, the max
// of n samples has CDF F^n; this estimates its q-quantile empirically.
func MaxOfNQuantile(d dist.Dist, n int, q float64, draws int) float64 {
	if draws <= 0 {
		draws = 200
	}
	xs := make([]float64, draws)
	for i := range xs {
		m := 0.0
		for j := 0; j < n; j++ {
			if s := d.Sample(); s > m {
				m = s
			}
		}
		xs[i] = m
	}
	// Sort-free quantile via counting would be overkill; reuse math.
	return quantile(xs, q)
}

func quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ { // insertion sort: draws are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
