package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"gopilot/internal/dist"
)

func TestPilotMakespanWaves(t *testing.T) {
	// 10 tasks of 60s on 4 cores: 3 waves → 180s + startup + overhead.
	got := PilotMakespan(10, 4, time.Minute, 30*time.Second, time.Second)
	want := 30*time.Second + 3*time.Minute + 10*time.Second
	if got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
	if PilotMakespan(0, 4, time.Minute, 0, 0) != 0 {
		t.Error("zero tasks should cost nothing")
	}
}

// Property: makespan is non-increasing in cores and non-decreasing in n.
func TestPilotMakespanMonotonicity(t *testing.T) {
	f := func(n8, c8 uint8) bool {
		n := int(n8%64) + 1
		c := int(c8%16) + 1
		t1 := PilotMakespan(n, c, time.Minute, 0, time.Second)
		t2 := PilotMakespan(n, c+1, time.Minute, 0, time.Second)
		t3 := PilotMakespan(n+1, c, time.Minute, 0, time.Second)
		return t2 <= t1 && t3 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupCurve(t *testing.T) {
	curve := SpeedupCurve(64, time.Minute, 0, 0, []int{1, 2, 4, 8})
	if curve[1] != 1 {
		t.Errorf("speedup at base = %g", curve[1])
	}
	if math.Abs(curve[8]-8) > 1e-9 {
		t.Errorf("ideal speedup at 8 cores = %g, want 8", curve[8])
	}
	// With overhead, speedup degrades below ideal.
	withOv := SpeedupCurve(64, time.Minute, 0, 5*time.Second, []int{1, 8})
	if withOv[8] >= 8 {
		t.Errorf("overheads should reduce speedup, got %g", withOv[8])
	}
}

func TestAmdahl(t *testing.T) {
	if s := Amdahl(0, 16); s != 16 {
		t.Errorf("fully parallel = %g, want 16", s)
	}
	if s := Amdahl(1, 16); s != 1 {
		t.Errorf("fully serial = %g, want 1", s)
	}
	if s := Amdahl(0.1, 1e9); s > 10.0001 {
		t.Errorf("asymptote = %g, want ≤10", s)
	}
	if Amdahl(0.5, 0) != 0 {
		t.Error("p=0 should be 0")
	}
}

func TestRexModel(t *testing.T) {
	m := RexModel{
		Replicas: 16, CoresPerReplica: 4, PilotCores: 32,
		MD: 10 * time.Minute, Exchange: time.Minute, Startup: 5 * time.Minute,
	}
	if c := m.Concurrency(); c != 8 {
		t.Fatalf("concurrency = %d, want 8", c)
	}
	// 16 replicas / 8 concurrent = 2 waves ×10m + 1m exchange = 21m.
	if ct := m.CycleTime(); ct != 21*time.Minute {
		t.Fatalf("cycle = %v, want 21m", ct)
	}
	if tt := m.Total(10); tt != 5*time.Minute+210*time.Minute {
		t.Fatalf("total = %v", tt)
	}
	eff := m.Efficiency(10)
	if eff <= 0 || eff > 1 {
		t.Fatalf("efficiency = %g", eff)
	}
	// More pilot cores (full concurrency) → higher efficiency per time,
	// but bounded by exchange overhead.
	m2 := m
	m2.PilotCores = 64
	if m2.CycleTime() >= m.CycleTime() {
		t.Error("more cores should shorten the cycle")
	}
}

func TestRexModelDegenerate(t *testing.T) {
	m := RexModel{Replicas: 4, CoresPerReplica: 8, PilotCores: 4, MD: time.Minute}
	if m.Concurrency() != 0 || m.CycleTime() != 0 {
		t.Fatal("undersized pilot should yield zero concurrency")
	}
}

func TestDirectSubmissionSimQueueDominates(t *testing.T) {
	// 64 jobs, generous slots, 60s tasks, exogenous waits ≈ 600s: makespan
	// is dominated by the *maximum* queue wait, not the task time.
	qw := dist.NewLogNormal(600, 1.0, 42)
	got := DirectSubmissionSim(64, 64, time.Minute, qw)
	if got < 10*time.Minute {
		t.Fatalf("makespan = %v, want ≥ 10m (max of 64 lognormal waits)", got)
	}
}

func TestDirectVsPilotShape(t *testing.T) {
	// The paper's late-binding claim: for many short tasks under heavy
	// queues, one pilot (one queue wait) beats per-task submission.
	task := time.Minute
	mkQ := func(seed int64) dist.Dist { return dist.NewLogNormal(900, 0.8, seed) }
	direct := DirectSubmissionSim(256, 32, task, mkQ(1))
	pilot := PilotSubmissionSim(256, 32, task, mkQ(2), 100*time.Millisecond)
	if pilot >= direct {
		t.Fatalf("pilot %v not faster than direct %v for 256 tasks", pilot, direct)
	}
}

func TestDirectSubmissionSimEdges(t *testing.T) {
	if DirectSubmissionSim(0, 4, time.Minute, dist.Constant(0)) != 0 {
		t.Error("zero jobs should cost nothing")
	}
	// slots <= 0 means unbounded.
	got := DirectSubmissionSim(8, 0, time.Minute, dist.Constant(0))
	if got != time.Minute {
		t.Errorf("unbounded slots makespan = %v, want 1m", got)
	}
	// Capacity-limited: 8 jobs, 2 slots, no queue wait → 4 waves.
	got = DirectSubmissionSim(8, 2, time.Minute, dist.Constant(0))
	if got != 4*time.Minute {
		t.Errorf("capacity-limited makespan = %v, want 4m", got)
	}
}

func TestMaxOfNQuantileGrowsWithN(t *testing.T) {
	d1 := dist.NewLogNormal(100, 1.0, 7)
	d2 := dist.NewLogNormal(100, 1.0, 7)
	q1 := MaxOfNQuantile(d1, 1, 0.5, 300)
	q64 := MaxOfNQuantile(d2, 64, 0.5, 300)
	if q64 <= q1 {
		t.Fatalf("max-of-64 median %g not > max-of-1 median %g", q64, q1)
	}
}

func TestFitOLSRecoversPlantedModel(t *testing.T) {
	// y = 3 + 2a - 0.5b, exact (no noise).
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{a, b})
			y = append(y, 3+2*a-0.5*b)
		}
	}
	r, err := FitOLS(x, y, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for i, w := range want {
		if math.Abs(r.Coef[i]-w) > 1e-8 {
			t.Errorf("coef[%d] = %g, want %g", i, r.Coef[i], w)
		}
	}
	if r2 := r.R2(x, y); math.Abs(r2-1) > 1e-9 {
		t.Errorf("R2 = %g, want 1", r2)
	}
	if rmse := r.RMSE(x, y); rmse > 1e-8 {
		t.Errorf("RMSE = %g, want ~0", rmse)
	}
	if got := r.Predict([]float64{10, 2}); math.Abs(got-22) > 1e-8 {
		t.Errorf("Predict = %g, want 22", got)
	}
}

func TestFitOLSWithNoise(t *testing.T) {
	rng := dist.NewNormal(0, 0.1, 99)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := float64(i % 20)
		x = append(x, []float64{a})
		y = append(y, 5+3*a+(rng.Sample()-0.1))
	}
	r, err := FitOLS(x, y, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Coef[1]-3) > 0.05 {
		t.Errorf("slope = %g, want ≈3", r.Coef[1])
	}
	if r2 := r.R2(x, y); r2 < 0.99 {
		t.Errorf("R2 = %g, want ≈1", r2)
	}
}

func TestFitOLSSingular(t *testing.T) {
	// Perfectly collinear features.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := FitOLS(x, y, nil); err == nil {
		t.Fatal("collinear features accepted")
	}
}

func TestFitOLSValidation(t *testing.T) {
	if _, err := FitOLS(nil, nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitOLS([][]float64{{1}}, []float64{1, 2}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitOLS([][]float64{{1, 2}, {3}}, []float64{1, 2}, nil); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FitOLS([][]float64{{1, 2}}, []float64{1}, nil); err == nil {
		t.Error("underdetermined system accepted")
	}
}

func TestRegressionString(t *testing.T) {
	r := &Regression{Names: []string{"p"}, Coef: []float64{1.5, -2}}
	if got := r.String(); got != "y = 1.5 + -2·p" {
		t.Fatalf("String = %q", got)
	}
}

func TestMAPE(t *testing.T) {
	r := &Regression{Names: []string{"x"}, Coef: []float64{0, 1}} // y = x
	x := [][]float64{{10}, {20}}
	y := []float64{11, 18} // 10% and 10% error
	if m := r.MAPE(x, y); math.Abs(m-0.0954) > 0.02 {
		t.Fatalf("MAPE = %g, want ≈0.095", m)
	}
	if m := r.MAPE([][]float64{{1}}, []float64{0}); m != 0 {
		t.Fatalf("MAPE with zero target = %g", m)
	}
}

func TestCrossoverTasks(t *testing.T) {
	// Heavy queue waits: pilot should win from small n (crossover early).
	mkQ := func() dist.Dist { return dist.NewLogNormal(600, 0.5, 11) }
	cross := CrossoverTasks(16, 16, time.Minute, mkQ, time.Second, 1024)
	if cross < 0 {
		t.Fatal("pilot never won despite heavy queue waits")
	}
}
