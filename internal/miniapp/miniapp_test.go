package miniapp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func TestTaskWorkloadUnits(t *testing.T) {
	w := TaskWorkload{Name: "w", Count: 10, Duration: dist.Constant(2), Cores: 2}
	units := w.Units()
	if len(units) != 10 {
		t.Fatalf("units = %d, want 10", len(units))
	}
	for i, u := range units {
		if u.Cores != 2 {
			t.Errorf("unit %d cores = %d", i, u.Cores)
		}
		if u.Run == nil {
			t.Errorf("unit %d has nil Run", i)
		}
		if !strings.HasPrefix(u.Name, "w-") {
			t.Errorf("unit name %q", u.Name)
		}
	}
	if (TaskWorkload{}).Units() != nil {
		t.Error("empty workload should produce no units")
	}
}

func TestSubmitAndWaitMeasuresMakespan(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 8, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgr.Close()
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 4})

	w := TaskWorkload{Name: "bag", Count: 8, Duration: dist.Constant(1)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	makespan, err := w.SubmitAndWait(ctx, mgr)
	if err != nil {
		t.Fatal(err)
	}
	// 8 tasks × 1s on 4 cores ≈ 2s modeled; accept broad band.
	if makespan < time.Second || makespan > 20*time.Second {
		t.Fatalf("makespan = %v, want ≈2s", makespan)
	}
}

func TestDesignPoints(t *testing.T) {
	d := Design{Factors: []Factor{
		{Name: "a", Levels: []float64{1, 2}},
		{Name: "b", Levels: []float64{10, 20, 30}},
	}}
	pts := d.Points()
	if len(pts) != 6 || d.Size() != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	// First factor varies slowest.
	if pts[0]["a"] != 1 || pts[0]["b"] != 10 {
		t.Errorf("pts[0] = %v", pts[0])
	}
	if pts[5]["a"] != 2 || pts[5]["b"] != 30 {
		t.Errorf("pts[5] = %v", pts[5])
	}
}

func TestDesignEmpty(t *testing.T) {
	d := Design{}
	pts := d.Points()
	if len(pts) != 1 {
		t.Fatalf("empty design points = %d, want 1 (the empty config)", len(pts))
	}
}

func TestRunnerExecutesGridWithReps(t *testing.T) {
	var calls []string
	r := Runner{
		Name:        "exp",
		Design:      Design{Factors: []Factor{{Name: "x", Levels: []float64{1, 2}}}},
		Repetitions: 3,
		Run: func(_ context.Context, cfg map[string]float64, rep int) (map[string]float64, error) {
			calls = append(calls, ConfigKey(cfg, []string{"x"}))
			return map[string]float64{"y": cfg["x"] * 10}, nil
		},
	}
	rs, err := r.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rs.Rows))
	}
	agg := rs.Aggregate("y")
	if s := agg["x=1"]; s.N != 3 || s.Mean != 10 {
		t.Fatalf("agg[x=1] = %+v", s)
	}
	if s := agg["x=2"]; s.Mean != 20 {
		t.Fatalf("agg[x=2] = %+v", s)
	}
}

func TestRunnerAbortsOnErrorByDefault(t *testing.T) {
	boom := errors.New("boom")
	r := Runner{
		Name:   "exp",
		Design: Design{Factors: []Factor{{Name: "x", Levels: []float64{1, 2, 3}}}},
		Run: func(_ context.Context, cfg map[string]float64, _ int) (map[string]float64, error) {
			if cfg["x"] == 2 {
				return nil, boom
			}
			return map[string]float64{"y": 1}, nil
		},
	}
	rs, err := r.Execute(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (aborted at failure)", len(rs.Rows))
	}
}

func TestRunnerContinueOnError(t *testing.T) {
	boom := errors.New("boom")
	r := Runner{
		Name:            "exp",
		Design:          Design{Factors: []Factor{{Name: "x", Levels: []float64{1, 2, 3}}}},
		ContinueOnError: true,
		Run: func(_ context.Context, cfg map[string]float64, _ int) (map[string]float64, error) {
			if cfg["x"] == 2 {
				return nil, boom
			}
			return map[string]float64{"y": 1}, nil
		},
	}
	rs, err := r.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
	if agg := rs.Aggregate("y"); len(agg) != 2 {
		t.Fatalf("aggregate over failed rows: %v", agg)
	}
}

func TestRunnerHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Runner{
		Design: Design{Factors: []Factor{{Name: "x", Levels: []float64{1}}}},
		Run: func(context.Context, map[string]float64, int) (map[string]float64, error) {
			return nil, nil
		},
	}
	if _, err := r.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestResultSetTableAndCSV(t *testing.T) {
	rs := &ResultSet{
		Name:    "demo",
		Factors: []string{"x"},
		Rows: []Row{
			{Config: map[string]float64{"x": 1}, Rep: 0, Metrics: map[string]float64{"y": 2}},
			{Config: map[string]float64{"x": 2}, Rep: 0, Err: errors.New("bad")},
		},
	}
	tbl := rs.Table().String()
	if !strings.Contains(tbl, "demo") || !strings.Contains(tbl, "bad") {
		t.Errorf("table missing content:\n%s", tbl)
	}
	var b strings.Builder
	if err := rs.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "x,rep,y,error\n") {
		t.Errorf("csv header: %q", strings.SplitN(b.String(), "\n", 2)[0])
	}
}

func TestMatrixExtraction(t *testing.T) {
	rs := &ResultSet{
		Factors: []string{"a", "b"},
		Rows: []Row{
			{Config: map[string]float64{"a": 1, "b": 2}, Metrics: map[string]float64{"y": 5}},
			{Config: map[string]float64{"a": 3, "b": 4}, Metrics: map[string]float64{"y": 6}},
			{Config: map[string]float64{"a": 9, "b": 9}, Err: errors.New("skip")},
		},
	}
	x, y := rs.Matrix([]string{"a", "b"}, "y")
	if len(x) != 2 || len(y) != 2 {
		t.Fatalf("matrix = %v %v", x, y)
	}
	if x[1][0] != 3 || x[1][1] != 4 || y[1] != 6 {
		t.Fatalf("row 1 = %v %g", x[1], y[1])
	}
}

func TestConfigKeyStable(t *testing.T) {
	cfg := map[string]float64{"b": 2, "a": 1}
	if got := ConfigKey(cfg, []string{"a", "b"}); got != "a=1,b=2" {
		t.Fatalf("key = %q", got)
	}
}
