// Package miniapp implements the Mini-App framework [32] the paper builds
// its evaluation methodology on (§V.C): synthetic-but-representative
// workload generators plus automated, reproducible experiment execution —
// full factorial designs, repetitions, CSV collection — so the
// build-assess-refine loop of Figure 5 can run unattended.
//
// The framework follows the paper's five design principles: simplicity
// (declarative specs), relevance (caller-controlled workloads/metrics),
// scalability (any pilot backend), portability (infrastructure-agnostic
// via the pilot-abstraction) and reproducibility (seeded generators,
// machine-readable output).
package miniapp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/metrics"
)

// TaskWorkload generates a bag of synthetic compute tasks whose service
// times follow a distribution — the core "compute Mini-App".
type TaskWorkload struct {
	// Name prefixes unit names.
	Name string
	// Count is the number of tasks.
	Count int
	// Duration samples per-task service time in modeled seconds.
	Duration dist.Dist
	// Cores per task (default 1).
	Cores int
	// InputData optionally attaches the same data-units to every task.
	InputData []string
	// MaxRetries is the per-unit retry budget.
	MaxRetries int
}

// Units materializes the workload as unit descriptions. Service times are
// sampled now (reproducibly, via the seeded Duration dist), so resubmitting
// the same generated slice replays the identical workload.
func (w TaskWorkload) Units() []core.UnitDescription {
	if w.Count <= 0 {
		return nil
	}
	cores := w.Cores
	if cores <= 0 {
		cores = 1
	}
	d := w.Duration
	if d == nil {
		d = dist.Constant(1)
	}
	out := make([]core.UnitDescription, w.Count)
	for i := range out {
		service := time.Duration(d.Sample() * float64(time.Second))
		out[i] = core.UnitDescription{
			Name:       fmt.Sprintf("%s-%04d", w.Name, i),
			Cores:      cores,
			InputData:  w.InputData,
			MaxRetries: w.MaxRetries,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				if !tc.Sleep(ctx, service) {
					return ctx.Err()
				}
				return nil
			},
		}
	}
	return out
}

// SubmitAndWait submits the workload to a manager and waits for all its
// units, returning the modeled makespan.
func (w TaskWorkload) SubmitAndWait(ctx context.Context, mgr *core.Manager) (time.Duration, error) {
	clock := mgr.Clock()
	start := clock.Now()
	units, err := mgr.SubmitUnits(w.Units())
	if err != nil {
		return 0, err
	}
	for _, u := range units {
		if s, err := u.Wait(ctx); s != core.UnitDone {
			return 0, fmt.Errorf("miniapp: unit %s %v: %w", u.ID(), s, err)
		}
	}
	return clock.Since(start), nil
}

// Factor is one experimental factor with its levels (Jain's experimental
// design terminology [29]).
type Factor struct {
	Name   string
	Levels []float64
}

// Design is a full factorial experimental design.
type Design struct {
	Factors []Factor
}

// Points enumerates the cartesian product of factor levels in a stable
// order (first factor varies slowest).
func (d Design) Points() []map[string]float64 {
	points := []map[string]float64{{}}
	for _, f := range d.Factors {
		var next []map[string]float64
		for _, p := range points {
			for _, lv := range f.Levels {
				q := make(map[string]float64, len(p)+1)
				for k, v := range p {
					q[k] = v
				}
				q[f.Name] = lv
				next = append(next, q)
			}
		}
		points = next
	}
	return points
}

// Size returns the number of design points.
func (d Design) Size() int {
	n := 1
	for _, f := range d.Factors {
		n *= len(f.Levels)
	}
	return n
}

// RunFunc executes one configuration and returns named metrics.
type RunFunc func(ctx context.Context, cfg map[string]float64, rep int) (map[string]float64, error)

// Row is one executed trial.
type Row struct {
	Config  map[string]float64
	Rep     int
	Metrics map[string]float64
	Err     error
}

// ResultSet collects trials of one experiment.
type ResultSet struct {
	Name    string
	Factors []string
	Rows    []Row
}

// Runner executes a design with repetitions — the automation the paper's
// "Automation" lesson calls for.
type Runner struct {
	// Name labels the experiment.
	Name string
	// Design enumerates configurations.
	Design Design
	// Repetitions per configuration (default 1).
	Repetitions int
	// Run executes one trial.
	Run RunFunc
	// ContinueOnError records failed trials instead of aborting.
	ContinueOnError bool
}

// Execute runs the full design sequentially (configurations must not share
// mutable infrastructure unless the RunFunc builds its own).
func (r Runner) Execute(ctx context.Context) (*ResultSet, error) {
	reps := r.Repetitions
	if reps <= 0 {
		reps = 1
	}
	var factors []string
	for _, f := range r.Design.Factors {
		factors = append(factors, f.Name)
	}
	rs := &ResultSet{Name: r.Name, Factors: factors}
	for _, cfg := range r.Design.Points() {
		for rep := 0; rep < reps; rep++ {
			if err := ctx.Err(); err != nil {
				return rs, err
			}
			m, err := r.Run(ctx, cfg, rep)
			rs.Rows = append(rs.Rows, Row{Config: cfg, Rep: rep, Metrics: m, Err: err})
			if err != nil && !r.ContinueOnError {
				return rs, fmt.Errorf("miniapp: %s %v rep %d: %w", r.Name, cfg, rep, err)
			}
		}
	}
	return rs, nil
}

// MetricNames returns the union of metric names across rows, sorted.
func (rs *ResultSet) MetricNames() []string {
	set := map[string]struct{}{}
	for _, row := range rs.Rows {
		for k := range row.Metrics {
			set[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Table renders the result set, one row per trial.
func (rs *ResultSet) Table() *metrics.Table {
	cols := append([]string{}, rs.Factors...)
	cols = append(cols, "rep")
	names := rs.MetricNames()
	cols = append(cols, names...)
	cols = append(cols, "error")
	t := metrics.NewTable(rs.Name, cols...)
	for _, row := range rs.Rows {
		vals := make([]any, 0, len(cols))
		for _, f := range rs.Factors {
			vals = append(vals, row.Config[f])
		}
		vals = append(vals, row.Rep)
		for _, n := range names {
			vals = append(vals, row.Metrics[n])
		}
		if row.Err != nil {
			vals = append(vals, row.Err.Error())
		} else {
			vals = append(vals, "")
		}
		t.AddRow(vals...)
	}
	return t
}

// WriteCSV writes the result set in CSV form.
func (rs *ResultSet) WriteCSV(w io.Writer) error { return rs.Table().WriteCSV(w) }

// Aggregate summarizes one metric per configuration (across reps),
// returning rows keyed by a stable "name=value,..." config string.
func (rs *ResultSet) Aggregate(metric string) map[string]metrics.Summary {
	groups := map[string][]float64{}
	for _, row := range rs.Rows {
		if row.Err != nil {
			continue
		}
		v, ok := row.Metrics[metric]
		if !ok {
			continue
		}
		key := ConfigKey(row.Config, rs.Factors)
		groups[key] = append(groups[key], v)
	}
	out := make(map[string]metrics.Summary, len(groups))
	for k, xs := range groups {
		out[k] = metrics.Summarize(xs)
	}
	return out
}

// ConfigKey renders a configuration deterministically.
func ConfigKey(cfg map[string]float64, order []string) string {
	parts := make([]string, 0, len(order))
	for _, f := range order {
		parts = append(parts, fmt.Sprintf("%s=%g", f, cfg[f]))
	}
	return strings.Join(parts, ",")
}

// Matrix extracts (X, y) regression inputs from the result set: features
// are the named factors, the target is a metric. Failed rows are skipped.
func (rs *ResultSet) Matrix(features []string, target string) (x [][]float64, y []float64) {
	for _, row := range rs.Rows {
		if row.Err != nil {
			continue
		}
		t, ok := row.Metrics[target]
		if !ok {
			continue
		}
		vec := make([]float64, len(features))
		for i, f := range features {
			vec[i] = row.Config[f]
		}
		x = append(x, vec)
		y = append(y, t)
	}
	return x, y
}
