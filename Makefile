GO ?= go

.PHONY: build test race vet bench bench-compare profile seed-audit doc-audit chaos test-federation ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration per exhibit: checks the benchmarks run end to end and
# prints the per-exhibit wall times and allocations (compare against
# BENCH_baseline.json).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run '^$$' .

# Gate against BENCH_baseline.json: three iterations per exhibit, fail on
# >10% sustained regression (25ms absolute floor for time; for the
# streaming exhibits listed in allocs_per_op, also on allocs/op growth).
bench-compare:
	bash -o pipefail -c "$(GO) test -bench=. -benchtime=3x -benchmem -run '^$$' . | $(GO) run ./cmd/benchcompare"

# Profile harness for the two long-pole exhibits: cpu+mem profile pairs
# under profiles/ (gitignored), one pair per benchmark. Inspect with e.g.
#   go tool pprof -top profiles/streaming_million.cpu.pprof
# The test binary lands next to the profiles so pprof can resolve symbols
# without rebuilding.
PROFILE_DIR ?= profiles
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench '^BenchmarkStreaming_Million$$' -benchtime 3x -benchmem \
		-cpuprofile $(PROFILE_DIR)/streaming_million.cpu.pprof \
		-memprofile $(PROFILE_DIR)/streaming_million.mem.pprof \
		-o $(PROFILE_DIR)/gopilot.test .
	$(GO) test -run '^$$' -bench '^BenchmarkTable2_MapReduce$$' -benchtime 3x -benchmem \
		-cpuprofile $(PROFILE_DIR)/mapreduce.cpu.pprof \
		-memprofile $(PROFILE_DIR)/mapreduce.mem.pprof \
		-o $(PROFILE_DIR)/gopilot.test .

# Seeding-spine lint: no math/rand and no raw integer seeds outside
# internal/dist; stream roots only where experiments are born; no clock
# reads, stream draws or data-service calls inside Compute closures; no
# sleeps, timers or clocks inside the internal/plan control plane.
seed-audit:
	bash tools/seed-audit.sh

# Documentation lint: every package carries a real package comment.
doc-audit:
	$(GO) run ./cmd/doclint .

# Chaos fuzz: run CHAOS_SEEDS random-seed chaos scenarios (starting at
# CHAOS_SEED0) against the invariant suite. On a violation the reproducing
# seed and a ready-to-paste `chaosreplay -seed N -bisect` command are
# printed and the target fails. Fully deterministic: a seed that fails
# here fails identically everywhere.
CHAOS_SEEDS ?= 20
CHAOS_SEED0 ?= 0
chaos:
	$(GO) run ./cmd/chaosreplay -fuzz $(CHAOS_SEEDS) -seed0 $(CHAOS_SEED0) -v

# Federation suite under the race detector: shard placement planning,
# epoch-chain divergence math, cluster handoff/link-fence/retention
# behavior, replication catch-up and divergence repair (plus the
# 10-seed replication-fault property test), offset-persistence
# restarts, the retention property test, the rehomed E13 exhibit, and
# the stale-handoff chaos acceptance test.
test-federation:
	$(GO) test -race -count=1 \
		-run 'TestShardReplicas|TestRecruitShard|TestDetectShardDrift|TestDivergence|TestClassifyReplica|TestCluster|TestFetchTrimmed|TestRetentionBound|TestReplication|TestStaleHandoffBug|TestOffsetStore|TestGroupRestart|TestRestartRedelivers|TestMillionMessages|TestChaosCatchesStaleHandoffBug' \
		./internal/plan/ ./internal/streaming/ ./internal/experiments/

ci: build vet seed-audit doc-audit test race bench-compare
