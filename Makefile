GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration per exhibit: checks the benchmarks run end to end and
# prints the per-exhibit wall times (compare against BENCH_baseline.json).
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

ci: build vet test race bench
