// Quickstart: the smallest complete gopilot program.
//
// It builds a simulated HPC machine, registers it behind the SAGA adaptor
// layer, starts a pilot (placeholder job), submits compute units into the
// shared queue *before and after* the pilot comes up — late binding — and
// prints per-unit statistics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/infra/hpc"
	"gopilot/internal/metrics"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func main() {
	// One modeled second costs one wall millisecond.
	clock := vclock.NewScaled(1000)

	// One root seed; every component below gets a named sub-stream.
	root := dist.NewStream(1)

	// A 16-node batch machine with ~2 minutes of queue wait.
	hpcStream := root.Named("infra/hpc/stampede")
	cluster := hpc.New(hpc.Config{
		Name: "stampede", Nodes: 16, CoresPerNode: 8,
		QueueWait: dist.LogNormalFrom(hpcStream.Named("queue-wait"), 120, 0.5),
		Backfill:  true,
		Clock:     clock,
		Stream:    hpcStream,
	})
	defer cluster.Shutdown()

	registry := saga.NewRegistry()
	registry.Register(saga.NewHPCService(cluster, clock))

	mgr := core.NewManager(core.Config{Registry: registry, Clock: clock})
	defer mgr.Close()

	// Submit work first: units queue in the manager, not in the batch
	// system — that decoupling is the pilot-abstraction.
	var units []*core.ComputeUnit
	for i := 0; i < 32; i++ {
		i := i
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name: fmt.Sprintf("task-%02d", i),
			Run: func(ctx context.Context, tc core.TaskContext) error {
				// 30 modeled seconds of "science".
				if !tc.Sleep(ctx, 30*time.Second) {
					return ctx.Err()
				}
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		units = append(units, u)
	}
	fmt.Printf("queued %d units, queue depth %d\n", len(units), mgr.QueueDepth())

	// One pilot pays one queue wait for all of them.
	pilot, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "demo-pilot", Resource: "hpc://stampede",
		Cores: 16, Walltime: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := mgr.WaitAll(ctx); err != nil {
		log.Fatal(err)
	}

	wait, run, turnaround := mgr.UnitMetrics()
	fmt.Printf("pilot startup (one queue wait): %s\n", metrics.FormatDuration(pilot.StartupTime()))
	fmt.Printf("units done: %d  mean wait %.1fs  mean runtime %.1fs  p95 turnaround %.1fs\n",
		pilot.UnitsCompleted(), wait.Mean, run.Mean, turnaround.P95)
}
