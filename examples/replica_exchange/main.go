// Replica-exchange MD on a pilot, with the analytical performance model —
// the paper's founding case study ([48], [72]; Table I "Task-Parallel").
//
//	go run ./examples/replica_exchange
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gopilot/internal/apps/rexchange"
	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/experiments"
	"gopilot/internal/metrics"
	"gopilot/internal/perfmodel"
)

func main() {
	tb := experiments.NewTestbed(experiments.TestbedConfig{Mode: experiments.ClockScaled, Scale: 1000, QueueWaitMean: 60, Seed: 7})
	defer tb.Close()
	mgr := tb.NewManager(nil)

	const (
		replicas = 16
		cycles   = 4
		cores    = 16
	)
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "rex-pilot", Resource: "hpc://stampede", Cores: cores, Walltime: 12 * time.Hour,
	}); err != nil {
		log.Fatal(err)
	}

	res, err := rexchange.Run(context.Background(), mgr, rexchange.Config{
		Replicas: replicas, Cycles: cycles,
		MDTime:       dist.NormalFrom(tb.Root.Named("app/rexchange/md-time"), 60, 5), // ~1 minute MD phases
		ExchangeTime: 5 * time.Second,
		Adaptive:     true, TargetAcceptance: 0.3,
		Stream: tb.Root.Named("app/rexchange"),
	})
	if err != nil {
		log.Fatal(err)
	}

	t := metrics.NewTable("replica-exchange cycles", "cycle", "modeled_time")
	for i, ct := range res.CycleTimes {
		t.AddRow(i, metrics.FormatDuration(ct))
	}
	fmt.Print(t)
	fmt.Printf("exchange acceptance: %.0f%% (%d/%d), ladder retunes: %d\n",
		res.AcceptanceRatio()*100, res.ExchangesAccepted, res.ExchangesAttempted, res.LadderRetunes)

	model := perfmodel.RexModel{
		Replicas: replicas, CoresPerReplica: 1, PilotCores: cores,
		MD: time.Minute, Exchange: 5 * time.Second,
	}
	fmt.Printf("measured total:  %s\n", metrics.FormatDuration(res.Elapsed))
	fmt.Printf("analytical model: %s (cycle %s, efficiency %.0f%%)\n",
		metrics.FormatDuration(model.Total(cycles)),
		metrics.FormatDuration(model.CycleTime()),
		model.Efficiency(cycles)*100)
}
