// Runtime cloud bursting (R3 dynamism, BigJob's cloud extension [63]):
// a workload lands on a small HPC pilot; the application monitors queue
// depth and, when it stays deep, acquires a cloud pilot *at runtime*.
// Both pilots drain the same late-binding queue.
//
//	go run ./examples/dynamic_scaling
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/experiments"
	"gopilot/internal/metrics"
)

func main() {
	tb := experiments.NewTestbed(experiments.TestbedConfig{Mode: experiments.ClockScaled, Scale: 1000, QueueWaitMean: 30, Seed: 9})
	defer tb.Close()
	mgr := tb.NewManager(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	hpcPilot, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "small-hpc", Resource: "hpc://stampede", Cores: 8, Walltime: 6 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := tb.Clock.Now()
	const n = 48
	task := 90 * time.Second
	for i := 0; i < n; i++ {
		if _, err := mgr.SubmitUnit(core.UnitDescription{
			Name: fmt.Sprintf("work-%02d", i),
			Run: func(ctx context.Context, tc core.TaskContext) error {
				if !tc.Sleep(ctx, task) {
					return ctx.Err()
				}
				return nil
			},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Application-level autonomic policy: if the queue is still deep once
	// the HPC pilot is up, burst to the cloud.
	burst := make(chan *core.Pilot, 1)
	go func() {
		defer close(burst)
		for {
			time.Sleep(5 * time.Millisecond) // poll (wall time)
			if mgr.QueueDepth() > 16 && hpcPilot.State() == core.PilotRunning {
				fmt.Printf("[autonomic] queue depth %d with 8 HPC cores — bursting to cloud\n", mgr.QueueDepth())
				p, err := mgr.SubmitPilot(core.PilotDescription{
					Name: "cloud-burst", Resource: "cloud://ec2", Cores: 24, Walltime: 6 * time.Hour,
					Attributes: map[string]string{"vm_type": "c5.2xlarge"},
				})
				if err != nil {
					log.Printf("burst failed: %v", err)
					return
				}
				burst <- p
				return
			}
			if mgr.QueueDepth() == 0 {
				return
			}
		}
	}()

	if err := mgr.WaitAll(ctx); err != nil {
		log.Fatal(err)
	}
	cloudPilot := <-burst
	makespan := tb.Clock.Now().Sub(start)

	t := metrics.NewTable("dynamic scaling summary", "metric", "value")
	t.AddRow("tasks", n)
	t.AddRow("makespan (modeled)", metrics.FormatDuration(makespan))
	t.AddRow("HPC pilot completed", hpcPilot.UnitsCompleted())
	if cloudPilot != nil {
		t.AddRow("cloud pilot completed", cloudPilot.UnitsCompleted())
		t.AddRow("cloud pilot startup (VM boot)", metrics.FormatDuration(cloudPilot.StartupTime()))
	}
	t.AddRow("cloud cost (units)", fmt.Sprintf("%.4f", tb.Cloud.Cost()))
	t.Render(os.Stdout)
}
