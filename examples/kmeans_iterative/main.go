// Iterative K-Means under Pilot-Data (re-read every pass) and Pilot-Memory
// (cached working set) — Table I's "Iterative" scenario and the Pilot-
// Memory case study [68].
//
//	go run ./examples/kmeans_iterative
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gopilot/internal/apps/kmeans"
	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/experiments"
	"gopilot/internal/memory"
	"gopilot/internal/metrics"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The dataset is shared input across both modes' testbeds; it hangs
	// off the example's own root.
	dataset := kmeans.Generate(8000, 5, 3, 1.0, dist.NewStream(42).Named("dataset"))
	t := metrics.NewTable("iterative K-Means: Pilot-Data vs Pilot-Memory",
		"mode", "iterations", "iter1", "later_mean", "total", "inertia")

	for _, mode := range []kmeans.Mode{kmeans.ModeData, kmeans.ModeMemory} {
		tb := experiments.NewTestbed(experiments.TestbedConfig{Mode: experiments.ClockScaled, Scale: 1000, QueueWaitMean: 10, Seed: 8})
		mgr := tb.NewManager(nil)
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: "kmeans", Resource: "local://localhost", Cores: 8, Walltime: 6 * time.Hour,
		}); err != nil {
			log.Fatal(err)
		}
		cfg := kmeans.Config{
			K: 5, MaxIter: 6, Tol: 0, Partitions: 8,
			Mode: mode, Site: "localhost",
			BytesPerPoint: 1 << 17, // ≈128 MB partitions in the transfer model
			Stream:        tb.Root.Named("app/kmeans"),
		}
		if mode == kmeans.ModeMemory {
			cfg.Cache = memory.NewCache(memory.Config{
				Name: "pilot-memory", CapacityBytes: 8 << 30, Clock: tb.Clock,
			})
		}
		ids, err := kmeans.Stage(ctx, tb.Data, dataset, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := kmeans.Run(ctx, mgr, dataset, ids, cfg)
		if err != nil {
			log.Fatal(err)
		}
		later := metrics.Mean(metrics.Durations(res.IterTimes[1:]))
		t.AddRow(mode.String(), res.Iters,
			metrics.FormatDuration(res.IterTimes[0]),
			fmt.Sprintf("%.2fs", later),
			metrics.FormatDuration(res.Elapsed),
			fmt.Sprintf("%.0f", res.Inertia))
		if mode == kmeans.ModeMemory {
			fmt.Printf("cache: hit rate %.0f%%, %d entries, %.0f MB resident\n",
				cfg.Cache.HitRate()*100, cfg.Cache.Len(), float64(cfg.Cache.Resident())/1e6)
		}
		tb.Close()
	}
	fmt.Print(t)
	fmt.Println("(identical inertia: caching changes the data path, not the math)")
}
