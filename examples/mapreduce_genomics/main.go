// Two data-intensive workloads on Pilot-Data across two sites:
//
//  1. genome read alignment (Smith-Waterman) with the reference staged at
//     one site — data-aware scheduling keeps tasks next to the data;
//  2. a MapReduce wordcount whose shuffle crosses sites.
//
// Reproduces the flavour of the paper's Pilot-Data and Pilot-MapReduce
// case studies ([66], [54]; Table I "Data-Parallel"/"Dataflow").
//
//	go run ./examples/mapreduce_genomics
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gopilot/internal/apps/genomics"
	"gopilot/internal/apps/wordcount"
	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/experiments"
	"gopilot/internal/infra"
	"gopilot/internal/mapreduce"
	"gopilot/internal/metrics"
	"gopilot/internal/scheduler"
)

func main() {
	tb := experiments.NewTestbed(experiments.TestbedConfig{Mode: experiments.ClockScaled, Scale: 1000, QueueWaitMean: 30, Seed: 3})
	defer tb.Close()
	mgr := tb.NewManager(scheduler.DataAware{})

	// One pilot at each HPC site.
	for _, r := range []string{"hpc://stampede", "hpc://comet"} {
		if _, err := mgr.SubmitPilot(core.PilotDescription{
			Name: r, Resource: r, Cores: 16, Walltime: 12 * time.Hour,
		}); err != nil {
			log.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// ---------------- genome alignment --------------------------------------
	ref := genomics.GenerateReference(3000, tb.Root.Named("reference"))
	reads := genomics.SampleReads(ref, 48, 36, 0.03, tb.Root.Named("reads"))
	chunks := genomics.Chunk(reads, 8)
	// The reference models a 3 GB file living at stampede.
	refID, chunkIDs, err := genomics.StageInputs(ctx, tb.Data, "stampede", ref, chunks, 3e9)
	if err != nil {
		log.Fatal(err)
	}
	tb.Data.ResetStats()
	res, err := genomics.Run(ctx, mgr, genomics.Config{
		ReferenceID: refID, ChunkIDs: chunkIDs, MinScore: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := tb.Data.Stats()
	fmt.Printf("alignment: %d/%d reads aligned in %s (modeled)\n",
		res.AlignedReads, res.TotalReads, metrics.FormatDuration(res.Elapsed))
	fmt.Printf("data-aware scheduling: %d local reads, %d cross-site transfers, %.1f GB moved\n\n",
		st.LocalReads, st.RemoteReads+st.Replications, float64(st.BytesMoved)/1e9)

	// ---------------- MapReduce wordcount -----------------------------------
	corpus := wordcount.GenerateCorpus(8, 2000, 200, tb.Root.Named("corpus"))
	ids := make([]string, len(corpus))
	for i, s := range corpus {
		ids[i] = fmt.Sprintf("wc-%d", i)
		site := "stampede"
		if i%2 == 1 {
			site = "comet" // inputs split across sites → cross-site shuffle
		}
		if err := tb.Data.Put(ctx, data.Unit{ID: ids[i], Content: []byte(s), LogicalSize: 256e6, Site: infra.Site(site)}); err != nil {
			log.Fatal(err)
		}
	}
	job := wordcount.Config("wc", ids, 4)
	job.MapCost = 20 * time.Second
	job.ReduceCost = 10 * time.Second
	mrRes, err := mapreduce.Run(ctx, mgr, job)
	if err != nil {
		log.Fatal(err)
	}
	out, err := mapreduce.Collect(ctx, mgr, mrRes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount: %d map + %d reduce tasks, %d distinct words, %s modeled (map %s, shuffle+reduce %s)\n",
		mrRes.MapTasks, mrRes.ReduceTasks, len(out),
		metrics.FormatDuration(mrRes.Elapsed),
		metrics.FormatDuration(mrRes.MapElapsed),
		metrics.FormatDuration(mrRes.ReduceElapsed))
}
