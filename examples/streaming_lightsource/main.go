// Streaming light-source reconstruction on Pilot-Streaming [32]: detector
// frames flow through a partitioned-log broker to pilot-managed
// reconstruction workers; a tumbling window aggregates peak statistics —
// Table I's "Streaming" scenario.
//
//	go run ./examples/streaming_lightsource
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"gopilot/internal/apps/lightsource"
	"gopilot/internal/core"
	"gopilot/internal/experiments"
	"gopilot/internal/metrics"
	"gopilot/internal/streaming"
)

func main() {
	tb := experiments.NewTestbed(experiments.TestbedConfig{Mode: experiments.ClockScaled, Scale: 1000, QueueWaitMean: 10, Seed: 5})
	defer tb.Close()
	mgr := tb.NewManager(nil)

	broker := streaming.NewBroker(streaming.BrokerConfig{
		AppendCost: 2 * time.Millisecond, FetchLatency: time.Millisecond, Clock: tb.Clock,
	})
	defer broker.Close()
	const partitions = 4
	if err := broker.CreateTopic("detector", partitions); err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "stream-pilot", Resource: "local://localhost", Cores: partitions + 1, Walltime: 6 * time.Hour,
	}); err != nil {
		log.Fatal(err)
	}

	// Windowed aggregation of reconstruction quality (10 modeled seconds).
	var mu sync.Mutex
	type windowStat struct {
		frames int
		errSum float64
	}
	windows := map[time.Time]*windowStat{}
	win := streaming.NewWindow(10*time.Second, func(start time.Time, msgs []streaming.Message) {
		st := &windowStat{}
		for _, m := range msgs {
			f, err := lightsource.Decode(m.Value)
			if err != nil {
				continue
			}
			if r := lightsource.Reconstruct(f, 3); r.Found {
				st.frames++
				st.errSum += r.Error
			}
		}
		mu.Lock()
		windows[start] = st
		mu.Unlock()
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	proc, err := streaming.StartProcessor(ctx, mgr, broker, streaming.ProcessorConfig{
		Name: "reconstruct", Topic: "detector", Workers: partitions,
		CostPerMessage: 8 * time.Millisecond, // modeled reconstruction cost
		Handler: func(ctx context.Context, tc core.TaskContext, m streaming.Message) error {
			win.Add(m)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream 600 frames at ~200 frames per modeled second.
	det := lightsource.NewDetector(24, 24, 0.5, 25, 2, tb.Root.Named("detector"))
	const frames = 600
	for i := 0; i < frames; i++ {
		if _, err := broker.Publish(ctx, "detector", nil, lightsource.Encode(det.Next())); err != nil {
			log.Fatal(err)
		}
	}
	if err := proc.WaitProcessed(ctx, frames); err != nil {
		log.Fatalf("drained %d/%d: %v", proc.Processed(), frames, err)
	}
	proc.Stop()
	win.Flush()

	lat := proc.LatencyStats()
	fmt.Printf("processed %d frames on %d partitions/%d workers\n", proc.Processed(), partitions, partitions)
	fmt.Printf("throughput: %.0f frames per modeled second\n", proc.Throughput())
	fmt.Printf("end-to-end latency: p50 %.0fms  p95 %.0fms (modeled)\n", lat.Median*1000, lat.P95*1000)

	t := metrics.NewTable("window aggregates (10s tumbling)", "window_start", "peaks", "mean_err_px")
	mu.Lock()
	for start, st := range windows {
		if st.frames == 0 {
			continue
		}
		t.AddRow(start.Format("15:04:05"), st.frames, fmt.Sprintf("%.2f", st.errSum/float64(st.frames)))
	}
	mu.Unlock()
	fmt.Print(t)
}
