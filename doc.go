// Package gopilot is a Go reproduction of the pilot-abstraction ecosystem
// from "Methods and Experiences for Developing Abstractions for
// Data-intensive, Scientific Applications" (Luckow & Jha, 2020,
// arXiv:2002.09009): the P* pilot model, SAGA-style adaptors over
// simulated heterogeneous infrastructure (HPC/HTC/cloud/serverless/YARN),
// Pilot-Data, Pilot-Memory, Pilot-MapReduce, Pilot-Streaming, the Mini-App
// experiment framework and the analytical/statistical performance models
// the paper's evaluation rests on.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure; `go run ./cmd/experiments` prints them as tables.
package gopilot
