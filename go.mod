module gopilot

go 1.22
