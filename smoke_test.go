// Repo-wide smoke test: every experiment exhibit of the paper's
// evaluation (DESIGN.md index E1–E13) executes end to end at an
// aggressive virtual-time compression, so a plain `go test ./...`
// exercises the full pipeline — SAGA adaptors over all five simulated
// infrastructures, the pilot manager, Pilot-Data/-Memory/-MapReduce/
// -Streaming, the Mini-App runner, and both performance-model families —
// not just the per-package units.
package gopilot_test

import (
	"fmt"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/experiments"
	"gopilot/internal/metrics"
	"gopilot/internal/perfmodel"
)

// smokeScale is the scaled-clock compression factor; on the default
// virtual clock it is inert (modeled sleeps cost zero wall time
// regardless). Frame counts are trimmed for the streaming exhibits to
// bound real CPU work.
const smokeScale = 8000

func tableOnly(tbl *metrics.Table, _ []string, err error) (*metrics.Table, error) {
	return tbl, err
}

func TestSmokeAllExhibits(t *testing.T) {
	exhibits := []struct {
		id, name string
		run      func() (*metrics.Table, error)
	}{
		{"E1", "Table1_Scenarios", func() (*metrics.Table, error) { return experiments.Table1(smokeScale) }},
		{"E2", "PilotOverhead", func() (*metrics.Table, error) { return experiments.PilotOverhead(smokeScale, 16) }},
		{"E3", "RexScaling", func() (*metrics.Table, error) { return experiments.RexScaling(smokeScale) }},
		{"E4", "PilotData", func() (*metrics.Table, error) { return experiments.PilotData(smokeScale) }},
		{"E5", "MapReduceScaling", func() (*metrics.Table, error) { return experiments.MapReduceScaling(smokeScale) }},
		{"E6", "PilotMemory", func() (*metrics.Table, error) { return experiments.PilotMemory(smokeScale) }},
		{"E7", "Streaming", func() (*metrics.Table, error) { return experiments.Streaming(smokeScale, 120) }},
		{"E7b", "ServerlessStreaming", func() (*metrics.Table, error) { return experiments.ServerlessStreaming(smokeScale, 80) }},
		{"E8", "ThroughputModel", func() (*metrics.Table, error) { return tableOnly(experiments.ThroughputModel(smokeScale, 80)) }},
		{"E9", "LateBinding", func() (*metrics.Table, error) { return experiments.LateBinding(smokeScale) }},
		{"E9b", "DynamicScaling", func() (*metrics.Table, error) { return experiments.DynamicScaling(smokeScale) }},
		{"E10", "Fig5Loop", func() (*metrics.Table, error) { return tableOnly(experiments.Fig5Loop(smokeScale, 60)) }},
		{"E11", "AblationAlgorithm", func() (*metrics.Table, error) { return experiments.AblationAlgorithm(smokeScale) }},
		{"E12", "EnKFAdaptive", func() (*metrics.Table, error) { return experiments.EnKFAdaptive(smokeScale) }},
		{"E13", "MillionMessages", func() (*metrics.Table, error) { return experiments.MillionMessages(smokeScale, 40_000) }},
	}
	for _, ex := range exhibits {
		t.Run(ex.id+"_"+ex.name, func(t *testing.T) {
			tbl, err := ex.run()
			if err != nil {
				t.Fatalf("%s failed: %v", ex.name, err)
			}
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced an empty table", ex.name)
			}
			if len(tbl.Columns) == 0 {
				t.Fatalf("%s produced a table with no columns", ex.name)
			}
		})
	}
}

// TestSameSeedIdenticalModelOutput is the determinism check for the
// discrete-event performance models (sim.Engine). The concurrent-runtime
// exhibits have the matching — and stronger — end-to-end check in
// internal/experiments/determinism_test.go, now that they run on the
// vclock.Virtual executor.
func TestSameSeedIdenticalModelOutput(t *testing.T) {
	run := func() string {
		direct := perfmodel.DirectSubmissionSim(256, 32, time.Minute, dist.NewLogNormal(600, 1.0, 42))
		pilot := perfmodel.PilotSubmissionSim(256, 32, time.Minute, dist.NewLogNormal(600, 1.0, 43), 50*time.Millisecond)
		q := perfmodel.MaxOfNQuantile(dist.NewLogNormal(100, 1.0, 7), 64, 0.9, 500)
		cross := perfmodel.CrossoverTasks(16, 16, time.Minute,
			func() dist.Dist { return dist.NewLogNormal(600, 0.5, 11) }, time.Second, 1024)
		return fmt.Sprintf("%d|%d|%.17g|%d", direct, pilot, q, cross)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different model output:\n  run 1: %s\n  run 2: %s", a, b)
	}
}
